"""DRTS-OCTS: directional RTS/data/ACK with omni-directional CTS (§2.3).

This hybrid (after Ko et al.) beams the RTS at the receiver, then the
receiver answers with an *omni-directional* CTS that silences every
hidden terminal, after which data and ACK are beamed.  The interfering
region splits into three areas:

* **Area I** (the sender's beam sector): silent for one slot,
* **Area II** (the rest of the plane within reach): no beam at the
  receiver for the ``2*l_rts`` window and silent when the receiver's
  reply lands — afterwards the omni CTS protects the handshake,
* **Area III** (receiver-only region ``B(r)``): no beam at the sender
  while the receiver transmits CTS and ACK.

Because the omni CTS itself can crash into ongoing neighbor handshakes,
the paper uses the *later* lower bound ``l_rts + l_cts + 2`` for the
truncated-geometric failed period, acknowledging that failures caused by
the CTS are discovered no earlier than the CTS exchange.
"""

from __future__ import annotations

import math
from typing import ClassVar

from .geometry import drts_octs_areas
from .schemes import CollisionAvoidanceScheme
from .truncgeom import truncated_geometric_mean

__all__ = ["DrtsOcts"]


class DrtsOcts(CollisionAvoidanceScheme):
    """Analytical model of the hybrid directional-RTS / omni-CTS scheme."""

    name: ClassVar[str] = "DRTS-OCTS"
    uses_directional_transmissions: ClassVar[bool] = True

    def p_ww(self, p: float) -> float:
        """``P_ww = (1-p) * exp(-p*N)``.

        Nearly every handshake, failed or successful, includes an
        omni-directional CTS, so a waiting node is effectively exposed to
        its whole neighborhood — the same expression as ORTS-OCTS.
        """
        self._check_p(p)
        return (1.0 - p) * math.exp(-p * self.params.n_neighbors)

    def interference_free_probability(self, r: float, p: float) -> float:
        """``P_I(r) = p1 * p2 * p3`` over the three areas of Section 2.3."""
        self._check_p(p)
        prm = self.params
        n = prm.n_neighbors
        p_dir = p * prm.directional_fraction
        areas = drts_octs_areas(r, prm.beamwidth)

        p1 = math.exp(-p * areas.s1 * n)
        p2 = math.exp(-p_dir * areas.s2 * n * (2.0 * prm.l_rts)) * math.exp(
            -p * areas.s2 * n
        )
        receiver_tx = 2.0 * prm.l_rts + prm.l_cts + prm.l_ack + 2.0
        p3 = math.exp(-p_dir * areas.s3 * n * receiver_tx)
        return p1 * p2 * p3

    def p_ws_at_distance(self, r: float, p: float) -> float:
        """``P_ws(r) = p * (1-p) * P_I(r)``."""
        return p * (1.0 - p) * self.interference_free_probability(r, p)

    def t_fail(self, p: float) -> float:
        """Truncated geometric mean with the omni-CTS-aware lower bound."""
        self._check_p(p)
        lower = self.params.l_rts + self.params.l_cts + 2.0
        upper = self.params.t_succeed
        return truncated_geometric_mean(p, lower, upper)
