"""Vectorized evaluation of the analytical model (numpy fast path).

The reference implementation in :mod:`repro.core.schemes` evaluates one
``(p, theta)`` point per `scipy` quadrature call — exact but slow for
dense sweeps.  This module recomputes the same quantities with numpy:
the distance integral ``P_ws = \\int_0^1 2 r P_ws(r) dr`` becomes a
trapezoid sum over an ``r`` grid, evaluated for a whole vector of ``p``
values at once.  Tests pin the fast path to the reference within a
small tolerance.

Use it for dense visualisation/optimisation grids; use the scheme
classes when you want the authoritative number.
"""

from __future__ import annotations

import math

import numpy as np

from .drts_dcts import DrtsDcts
from .drts_octs import DrtsOcts
from .geometry import drts_dcts_areas, drts_octs_areas, hidden_area
from .orts_octs import OrtsOcts
from .params import ProtocolParameters
from .schemes import CollisionAvoidanceScheme
from .truncgeom import truncated_geometric_mean

__all__ = ["throughput_curve", "p_ws_curve"]

_R_GRID_POINTS = 257


def _area_vectors(scheme: CollisionAvoidanceScheme, r: np.ndarray):
    """Per-scheme (areas, slot-weights, uses-thinned-probability) rows.

    Each constraint contributes ``exp(-q_i * S_i(r) * N * d_i)`` where
    ``q_i`` is ``p`` or ``p' = p*theta/2pi``.  Returns a list of
    ``(S_i(r) vector, d_i, thinned?)`` rows.
    """
    prm = scheme.params
    l_rts, l_cts = prm.l_rts, prm.l_cts
    l_data, l_ack = prm.l_data, prm.l_ack
    if isinstance(scheme, OrtsOcts):
        b = np.array([hidden_area(float(x)) for x in r])
        return [
            (np.ones_like(r), 1.0, False),
            (b, 2 * l_rts + 1, False),
        ]
    if isinstance(scheme, DrtsOcts):
        s1 = np.empty_like(r)
        s2 = np.empty_like(r)
        s3 = np.empty_like(r)
        for k, x in enumerate(r):
            areas = drts_octs_areas(float(x), prm.beamwidth)
            s1[k], s2[k], s3[k] = areas.as_tuple()
        return [
            (s1, 1.0, False),
            (s2, 2 * l_rts, True),
            (s2, 1.0, False),
            (s3, 2 * l_rts + l_cts + l_ack + 2, True),
        ]
    if isinstance(scheme, DrtsDcts):
        s = [np.empty_like(r) for _ in range(5)]
        for k, x in enumerate(r):
            areas = drts_dcts_areas(float(x), prm.beamwidth)
            for idx, value in enumerate(areas.as_tuple()):
                s[idx][k] = value
        span = min(scheme.area3_span_factor * prm.beamwidth, 2 * math.pi)
        span_ratio = span / prm.beamwidth  # p'' = p' * span_ratio
        return [
            (s[0], 1.0, False),
            (s[1], 2 * l_rts, True),
            (s[1], 1.0, False),
            (
                s[2] * span_ratio,
                2 * l_rts + l_cts + l_data + l_ack + 4,
                True,
            ),
            (s[3], 2 * l_rts + l_cts + l_ack + 2, True),
            (s[4], 3 * l_rts + l_data + 2, True),
        ]
    raise TypeError(f"no fast path for {type(scheme).__name__}")


def p_ws_curve(
    scheme: CollisionAvoidanceScheme, p_values: np.ndarray
) -> np.ndarray:
    """``P_ws`` for a vector of ``p`` values (trapezoid over r)."""
    p = np.asarray(p_values, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("p_values must be a non-empty 1-D array")
    if (p <= 0).any() or (p >= 1).any():
        raise ValueError("all p values must lie in (0, 1)")
    prm = scheme.params
    n = prm.n_neighbors
    frac = prm.beamwidth / (2 * math.pi)
    r = np.linspace(0.0, 1.0, _R_GRID_POINTS)
    rows = _area_vectors(scheme, r)

    # exponent[j, k] = sum_i q_factor_i * S_i(r_k) * N * d_i, with
    # q_factor in {p_j, p_j * frac}.
    base = np.zeros((p.size, r.size))
    for area, slots, thinned in rows:
        q = p * frac if thinned else p
        base += np.outer(q, area * (n * slots))
    integrand = 2.0 * r * np.exp(-base)  # shape (len(p), len(r))
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 1.x/2.x
    integral = trapezoid(integrand, r, axis=1)
    return p * (1.0 - p) * integral


def throughput_curve(
    scheme: CollisionAvoidanceScheme, p_values: np.ndarray
) -> np.ndarray:
    """Saturation throughput for a vector of ``p`` values."""
    p = np.asarray(p_values, dtype=float)
    p_ws = p_ws_curve(scheme, p)
    p_ww = np.array([scheme.p_ww(float(x)) for x in p])
    t_fail = np.array([scheme.t_fail(float(x)) for x in p])
    t_succeed = scheme.t_succeed()
    pi_w = 1.0 / (2.0 - p_ww)
    pi_s = p_ws * pi_w
    pi_f = np.clip(1.0 - pi_w - pi_s, 0.0, None)
    cycle = pi_w * 1.0 + pi_s * t_succeed + pi_f * t_fail
    return pi_s * scheme.params.l_data / cycle
