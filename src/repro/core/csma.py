"""Non-persistent CSMA baseline within the same node model.

The paper's model descends from Takagi & Kleinrock's and Wu & Varshney's
analyses of CSMA, and its Section 1 positions RTS/CTS collision
avoidance against plain carrier sensing.  This module closes the loop by
expressing non-persistent CSMA (data + ACK, no RTS/CTS) in the *same*
three-state node chain, which makes for a clean ablation: with long data
packets the whole data frame is vulnerable to hidden terminals, so CSMA
collapses as ``N`` or ``l_data`` grow, exactly the regime in which the
handshake schemes earn their overhead.

The mapping mirrors ORTS-OCTS with the RTS's role played by the data
packet itself:

* success requires the sender's neighborhood silent for one slot and all
  hidden terminals in ``B(r)`` silent for ``2*l_data + 1`` slots,
* ``T_succeed = l_data + l_ack + 2``,
* a failure costs a full data packet: ``T_fail = l_data + 1``.
"""

from __future__ import annotations

import math
from typing import ClassVar

from .geometry import hidden_area
from .schemes import CollisionAvoidanceScheme

__all__ = ["NonPersistentCsma"]


class NonPersistentCsma(CollisionAvoidanceScheme):
    """Analytical model of non-persistent CSMA with omni antennas."""

    name: ClassVar[str] = "NP-CSMA"
    uses_directional_transmissions: ClassVar[bool] = False

    def t_succeed(self) -> float:
        """Data plus ACK, each with one turnaround slot."""
        return self.params.l_data + self.params.l_ack + 2.0

    def p_ww(self, p: float) -> float:
        """Same neighborhood-silence expression as ORTS-OCTS."""
        self._check_p(p)
        return (1.0 - p) * math.exp(-p * self.params.n_neighbors)

    def p_ws_at_distance(self, r: float, p: float) -> float:
        """The entire data frame is the vulnerable period."""
        self._check_p(p)
        n = self.params.n_neighbors
        vulnerable = 2.0 * self.params.l_data + 1.0
        return (
            p
            * (1.0 - p)
            * math.exp(-p * n)
            * math.exp(-p * n * hidden_area(r) * vulnerable)
        )

    def t_fail(self, p: float) -> float:
        """A failed transmission wastes the whole data frame."""
        self._check_p(p)
        return self.params.l_data + 1.0
