"""Analytical model of collision avoidance with directional antennas.

This package is the paper's primary contribution: closed-form (up to one
numerical integral) saturation-throughput models for three MAC schemes
in a 2-D Poisson multi-hop network —

* :class:`~repro.core.orts_octs.OrtsOcts` — everything omni-directional,
* :class:`~repro.core.drts_dcts.DrtsDcts` — everything directional,
* :class:`~repro.core.drts_octs.DrtsOcts` — directional RTS/data/ACK
  with an omni-directional CTS,

plus a :class:`~repro.core.csma.NonPersistentCsma` baseline, geometry
helpers, the shared node Markov chain, and sweep/optimisation utilities
that regenerate Fig. 5.
"""

from .btma import IdealizedBtma
from .channel_model import ChannelFeedback, airtime_fraction, attempt_probability
from .csma import NonPersistentCsma
from .drts_dcts import DrtsDcts
from .fastpath import p_ws_curve, throughput_curve
from .drts_octs import DrtsOcts
from .geometry import (
    DrtsDctsAreas,
    DrtsOctsAreas,
    disk_overlap_area,
    drts_dcts_areas,
    drts_octs_areas,
    hidden_area,
    q_takagi_kleinrock,
)
from .markov import StationaryDistribution, solve_node_chain, stationary_from_matrix
from .montecarlo import (
    InterferenceConstraint,
    MonteCarloEstimate,
    constraints_for,
    estimate_p_ws,
    estimate_p_ws_at_distance,
    simulate_node_chain,
)
from .optimize import ThroughputOptimum, maximize_throughput
from .orts_octs import OrtsOcts
from .params import PAPER_PARAMETERS, ProtocolParameters
from .schemes import CollisionAvoidanceScheme
from .sweep import (
    SCHEME_FACTORIES,
    SweepPoint,
    SweepSeries,
    beamwidth_sweep,
    fig5_series,
    paper_beamwidths,
)
from .truncgeom import truncated_geometric_mean, truncated_geometric_pmf

__all__ = [
    "CollisionAvoidanceScheme",
    "OrtsOcts",
    "DrtsDcts",
    "DrtsOcts",
    "NonPersistentCsma",
    "IdealizedBtma",
    "p_ws_curve",
    "throughput_curve",
    "ProtocolParameters",
    "PAPER_PARAMETERS",
    "StationaryDistribution",
    "solve_node_chain",
    "stationary_from_matrix",
    "ThroughputOptimum",
    "maximize_throughput",
    "SweepPoint",
    "SweepSeries",
    "SCHEME_FACTORIES",
    "beamwidth_sweep",
    "fig5_series",
    "paper_beamwidths",
    "truncated_geometric_mean",
    "truncated_geometric_pmf",
    "ChannelFeedback",
    "airtime_fraction",
    "attempt_probability",
    "InterferenceConstraint",
    "MonteCarloEstimate",
    "constraints_for",
    "estimate_p_ws",
    "estimate_p_ws_at_distance",
    "simulate_node_chain",
    "q_takagi_kleinrock",
    "hidden_area",
    "disk_overlap_area",
    "drts_dcts_areas",
    "drts_octs_areas",
    "DrtsDctsAreas",
    "DrtsOctsAreas",
]
