"""Truncated geometric distribution for failed-handshake durations.

The directional schemes cannot bound when a handshake is disrupted, so
the paper models the failed period ``T_fail`` as a geometric random
variable truncated to ``[lower, upper]`` (equation (3))::

    T_fail = (1 - p) / (1 - p^(T2 - T1 + 1)) * sum_{i=0}^{T2-T1} p^i (T1 + i)

Small ``p`` means failures are detected early (mass concentrated near
the lower bound); ``p -> 1`` pushes the mean toward the midpoint.
"""

from __future__ import annotations

import math

__all__ = ["truncated_geometric_mean", "truncated_geometric_pmf"]


def _validate(p: float, lower: float, upper: float) -> int:
    if not 0.0 <= p < 1.0:
        raise ValueError(f"p must be in [0, 1), got {p!r}")
    if lower <= 0 or upper <= 0:
        raise ValueError(f"bounds must be positive, got [{lower!r}, {upper!r}]")
    if upper < lower:
        raise ValueError(f"upper bound {upper!r} below lower bound {lower!r}")
    span = int(round(upper - lower))
    if not math.isclose(upper - lower, span, abs_tol=1e-9):
        raise ValueError(
            "bounds must differ by an integer number of slots, got "
            f"[{lower!r}, {upper!r}]"
        )
    return span


def truncated_geometric_pmf(p: float, lower: float, upper: float) -> list[float]:
    """Probability mass of durations ``lower, lower+1, ..., upper``.

    ``P(T = lower + i) = (1 - p) p^i / (1 - p^(span + 1))``.
    """
    span = _validate(p, lower, upper)
    if p == 0.0:
        return [1.0] + [0.0] * span
    norm = (1.0 - p) / (1.0 - p ** (span + 1))
    return [norm * p**i for i in range(span + 1)]


def truncated_geometric_mean(p: float, lower: float, upper: float) -> float:
    """Mean duration of a failed handshake (equation (3) of the paper).

    Args:
        p: per-slot transmission probability, in ``[0, 1)``.
        lower: shortest possible failed period ``T1`` in slots.
        upper: longest possible failed period ``T2`` in slots.

    Returns:
        The expected failed-period length in slots; always within
        ``[lower, upper]``.
    """
    span = _validate(p, lower, upper)
    if p == 0.0 or span == 0:
        return float(lower)
    norm = (1.0 - p) / (1.0 - p ** (span + 1))
    total = sum(p**i * (lower + i) for i in range(span + 1))
    return norm * total
