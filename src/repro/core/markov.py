"""Three-state node Markov chain shared by all analytical schemes.

Every node cycles through *wait*, *succeed* and *fail* (Fig. 1 of the
paper).  From *wait* a node moves to *succeed* with probability ``P_ws``
(it initiates a handshake that completes), stays in *wait* with
probability ``P_ww`` (nobody in range transmits) and moves to *fail*
otherwise.  Both *succeed* and *fail* return to *wait* with probability
one, because collision avoidance forbids back-to-back data packets.

The stationary distribution therefore only depends on ``P_ww`` and
``P_ws``::

    pi_w = 1 / (2 - P_ww)
    pi_s = P_ws * pi_w
    pi_f = 1 - pi_w - pi_s
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StationaryDistribution", "solve_node_chain", "stationary_from_matrix"]


@dataclass(frozen=True)
class StationaryDistribution:
    """Stationary probabilities of the wait/succeed/fail node chain."""

    wait: float
    succeed: float
    fail: float

    def __post_init__(self) -> None:
        total = self.wait + self.succeed + self.fail
        if not abs(total - 1.0) < 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total!r}")
        for name, value in (
            ("wait", self.wait),
            ("succeed", self.succeed),
            ("fail", self.fail),
        ):
            if not -1e-12 <= value <= 1.0 + 1e-12:
                raise ValueError(f"{name} probability out of [0, 1]: {value!r}")

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.wait, self.succeed, self.fail)


def solve_node_chain(p_ww: float, p_ws: float) -> StationaryDistribution:
    """Solve the three-state chain given ``P_ww`` and ``P_ws``.

    Args:
        p_ww: probability of remaining in *wait* for another slot.
        p_ws: probability of jumping from *wait* into a successful
            handshake.  Must satisfy ``p_ws + p_ww <= 1``.

    Returns:
        The stationary distribution ``(pi_w, pi_s, pi_f)``.
    """
    if not 0.0 <= p_ww <= 1.0:
        raise ValueError(f"p_ww must be in [0, 1], got {p_ww!r}")
    if not 0.0 <= p_ws <= 1.0:
        raise ValueError(f"p_ws must be in [0, 1], got {p_ws!r}")
    if p_ws + p_ww > 1.0 + 1e-12:
        raise ValueError(
            f"p_ws + p_ww must not exceed 1, got {p_ws + p_ww!r}"
        )
    pi_w = 1.0 / (2.0 - p_ww)
    pi_s = p_ws * pi_w
    pi_f = max(0.0, 1.0 - pi_w - pi_s)
    return StationaryDistribution(wait=pi_w, succeed=pi_s, fail=pi_f)


def stationary_from_matrix(transition: np.ndarray) -> np.ndarray:
    """Stationary distribution of an arbitrary finite Markov chain.

    Solves ``pi P = pi`` with ``sum(pi) = 1`` via a least-squares
    formulation.  Used in tests to cross-check the closed form of
    :func:`solve_node_chain` and available for model extensions with
    richer state spaces.

    Args:
        transition: a right-stochastic square matrix (rows sum to one).

    Returns:
        The stationary row vector as a 1-D numpy array.
    """
    matrix = np.asarray(transition, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"transition matrix must be square, got {matrix.shape}")
    rows = matrix.sum(axis=1)
    if not np.allclose(rows, 1.0, atol=1e-9):
        raise ValueError(f"rows must sum to 1, got row sums {rows}")
    if (matrix < -1e-12).any():
        raise ValueError("transition probabilities must be non-negative")
    n = matrix.shape[0]
    # pi (P - I) = 0  and  pi 1 = 1  =>  solve the stacked system.
    a = np.vstack([matrix.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    solution = np.clip(solution, 0.0, None)
    return solution / solution.sum()
