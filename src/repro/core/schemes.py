"""Common machinery for the three analytical collision-avoidance schemes.

Each scheme supplies three ingredients:

* ``p_ww(p)`` — the probability a waiting node stays waiting one more slot,
* ``p_ws_at_distance(r, p)`` — the probability a node successfully starts
  and completes a four-way handshake with a neighbor at distance ``r``,
* ``t_fail(p)`` — the expected length of a failed handshake in slots.

The base class turns those into the stationary distribution of the node
Markov chain and the saturation throughput::

    Th(p) = pi_s * l_data / (pi_w * 1 + pi_s * T_succeed + pi_f * T_fail)

Throughput is normalized: it is the fraction of channel time spent on
successfully delivered data payload, per node neighborhood.
"""

from __future__ import annotations

import abc
import math
from typing import ClassVar

from scipy import integrate

from .markov import StationaryDistribution, solve_node_chain
from .params import ProtocolParameters

__all__ = ["CollisionAvoidanceScheme"]


class CollisionAvoidanceScheme(abc.ABC):
    """Template for the ORTS-OCTS / DRTS-DCTS / DRTS-OCTS analyses."""

    #: Human-readable scheme name, e.g. ``"DRTS-DCTS"``.
    name: ClassVar[str] = "abstract"
    #: Whether the scheme uses directional transmissions anywhere.
    uses_directional_transmissions: ClassVar[bool] = False

    def __init__(self, params: ProtocolParameters) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # Scheme-specific pieces.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def p_ww(self, p: float) -> float:
        """Probability that a waiting node stays in *wait* for a slot."""

    @abc.abstractmethod
    def p_ws_at_distance(self, r: float, p: float) -> float:
        """``P_ws(r)``: success probability toward a neighbor at distance ``r``.

        ``r`` is normalized to the transmission range (``0 < r <= 1``).
        """

    @abc.abstractmethod
    def t_fail(self, p: float) -> float:
        """Expected duration of a failed handshake, in slots."""

    # ------------------------------------------------------------------
    # Derived quantities (shared by every scheme).
    # ------------------------------------------------------------------

    def t_succeed(self) -> float:
        """Duration of a successful four-way handshake, in slots."""
        return self.params.t_succeed

    def p_ws(self, p: float) -> float:
        """``P_ws = \\int_0^1 2 r P_ws(r) dr``.

        The factor ``2r`` is the density of the distance to a uniformly
        chosen neighbor inside the unit disk.
        """
        self._check_p(p)
        value, _abserr = integrate.quad(
            lambda r: 2.0 * r * self.p_ws_at_distance(r, p), 0.0, 1.0,
            limit=100,
        )
        # Guard against tiny negative values from quadrature noise.
        return min(max(value, 0.0), 1.0)

    def stationary(self, p: float) -> StationaryDistribution:
        """Stationary distribution of the wait/succeed/fail node chain."""
        self._check_p(p)
        return solve_node_chain(p_ww=self.p_ww(p), p_ws=self.p_ws(p))

    def throughput(self, p: float) -> float:
        """Saturation throughput at per-slot transmission probability ``p``."""
        self._check_p(p)
        pi = self.stationary(p)
        denominator = (
            pi.wait * 1.0
            + pi.succeed * self.t_succeed()
            + pi.fail * self.t_fail(p)
        )
        return pi.succeed * self.params.l_data / denominator

    def expected_service_slots(self, p: float) -> float:
        """Expected slots per *delivered* packet under saturation.

        By renewal-reward, the mean time between successes is the mean
        cycle time over the success probability::

            E[service] = (pi_w * 1 + pi_s * T_s + pi_f * T_f) / pi_s

        This is the analytical counterpart of the Fig. 7 delay metric
        (up to the slot/wall-clock conversion) and the exact inverse of
        per-packet throughput: ``Th = l_data / E[service]``.
        """
        self._check_p(p)
        pi = self.stationary(p)
        if pi.succeed == 0.0:
            return math.inf
        cycle = (
            pi.wait * 1.0
            + pi.succeed * self.t_succeed()
            + pi.fail * self.t_fail(p)
        )
        return cycle / pi.succeed

    # ------------------------------------------------------------------

    @staticmethod
    def _check_p(p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must lie strictly inside (0, 1), got {p!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.params!r})"
