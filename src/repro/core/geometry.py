"""Planar geometry used by the analytical model.

All functions work in the normalized coordinates of the paper: the
transmission range is ``R = 1`` and areas are normalized by ``pi * R**2``
(so the full hearing disk has normalized area ``1``).

The central quantity is Takagi and Kleinrock's ``q(t)``::

    q(t) = arccos(t) - t * sqrt(1 - t**2)

``2 * R**2 * q(r / (2R))`` is the area of the lens-shaped intersection of
two hearing disks whose centers are ``r`` apart; ``B(r)`` — the region
hidden from the sender but audible to the receiver — follows directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "q_takagi_kleinrock",
    "hidden_area",
    "disk_overlap_area",
    "DrtsDctsAreas",
    "DrtsOctsAreas",
    "drts_dcts_areas",
    "drts_octs_areas",
]


def q_takagi_kleinrock(t: float) -> float:
    """Takagi-Kleinrock helper ``q(t) = arccos(t) - t*sqrt(1 - t^2)``.

    Defined for ``t`` in ``[0, 1]``; decreases from ``pi/2`` at ``t = 0``
    to ``0`` at ``t = 1``.
    """
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"q(t) is defined on [0, 1], got t={t!r}")
    return math.acos(t) - t * math.sqrt(1.0 - t * t)


def disk_overlap_area(r: float) -> float:
    """Normalized area of the overlap of two unit-radius hearing disks.

    The disk centers are ``r`` apart (``0 <= r <= 1`` after
    normalization).  The physical overlap is ``2 R^2 q(r / 2R)``; divided
    by ``pi R^2`` this is ``2 q(r/2) / pi``.
    """
    if not 0.0 <= r <= 2.0:
        raise ValueError(f"distance r must be in [0, 2], got {r!r}")
    return 2.0 * q_takagi_kleinrock(r / 2.0) / math.pi


def hidden_area(r: float) -> float:
    """Normalized hidden-terminal area ``B(r) / (pi R^2)``.

    ``B(r)`` is the region inside the receiver's hearing disk but outside
    the sender's: ``B(r) = pi R^2 - 2 R^2 q(r / 2R)``, i.e. normalized
    ``1 - 2 q(r/2) / pi``.  Increases from 0 at ``r = 0``.
    """
    return 1.0 - disk_overlap_area(r)


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


@dataclass(frozen=True)
class DrtsDctsAreas:
    """The five-area decomposition around a DRTS-DCTS handshake (Fig. 3).

    All areas are normalized by ``pi R^2``.  Roughly:

    * ``s1`` (Area I): the sender's beam sector — nodes here can collide
      with the initial RTS during a single slot.
    * ``s2`` (Area II): the part of the receiver's "exposed" sector not
      covered by the sender's beam — nodes here must stay quiet toward
      the receiver during the RTS vulnerable period.
    * ``s3`` (Area III): the lens region covered by both hearing disks
      outside both beams — nodes here must not beam at the pair for the
      whole handshake.
    * ``s4`` (Area IV): the receiver-only region (``B(r)``) — dangerous
      while the receiver transmits CTS and ACK.
    * ``s5`` (Area V): the sender-only region — dangerous while the
      sender transmits RTS and data.
    """

    s1: float
    s2: float
    s3: float
    s4: float
    s5: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.s1, self.s2, self.s3, self.s4, self.s5)


def drts_dcts_areas(r: float, beamwidth: float) -> DrtsDctsAreas:
    """Evaluate equation (4) of the paper with defensive clamping.

    The raw expressions can stray slightly outside the physically
    meaningful range (and ``tan(theta/2)`` diverges as ``theta`` nears
    ``pi``), so each area is clamped to ``[0, 1]``.  The clamping is the
    limit behaviour the paper's plotted range (``theta <= pi``) implies.

    Args:
        r: normalized sender-receiver distance in ``[0, 1]``.
        beamwidth: antenna beamwidth ``theta`` in radians, ``(0, 2*pi]``.
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"distance r must be in [0, 1], got {r!r}")
    if not 0.0 < beamwidth <= 2 * math.pi:
        raise ValueError(f"beamwidth must be in (0, 2*pi], got {beamwidth!r}")

    theta = beamwidth
    two_pi = 2.0 * math.pi
    # tan(theta/2) blows up at theta = pi; treat the triangle correction
    # term as saturated there (the sector fully covers the chord).
    half = theta / 2.0
    if half < math.pi / 2.0:
        tri = (r * r) * math.tan(half) / two_pi
    else:
        tri = float("inf")

    overlap = disk_overlap_area(r)  # 2 q(r/2) / pi

    s1 = theta / two_pi
    s2 = _clamp(theta / two_pi - tri if math.isfinite(tri) else 0.0, 0.0, 1.0)
    raw_s3 = overlap - theta / math.pi + (tri if math.isfinite(tri) else theta / two_pi)
    s3 = _clamp(raw_s3, 0.0, 1.0)
    s4 = _clamp(1.0 - overlap, 0.0, 1.0)
    s5 = s4
    return DrtsDctsAreas(s1=s1, s2=s2, s3=s3, s4=s4, s5=s5)


@dataclass(frozen=True)
class DrtsOctsAreas:
    """The three-area decomposition for DRTS-OCTS (Section 2.3).

    * ``s1`` (Area I): the sender's beam sector.
    * ``s2`` (Area II): everything else within reach — silenced by the
      omni-directional CTS after the RTS vulnerable period.
    * ``s3`` (Area III): the receiver-only hidden region (same as
      Area IV of the DRTS-DCTS picture).
    """

    s1: float
    s2: float
    s3: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.s1, self.s2, self.s3)


def drts_octs_areas(r: float, beamwidth: float) -> DrtsOctsAreas:
    """Evaluate the Section 2.3 area decomposition.

    Args:
        r: normalized sender-receiver distance in ``[0, 1]``.
        beamwidth: antenna beamwidth ``theta`` in radians, ``(0, 2*pi]``.
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"distance r must be in [0, 1], got {r!r}")
    if not 0.0 < beamwidth <= 2 * math.pi:
        raise ValueError(f"beamwidth must be in (0, 2*pi], got {beamwidth!r}")
    theta = beamwidth
    two_pi = 2.0 * math.pi
    s1 = theta / two_pi
    s2 = _clamp(1.0 - theta / two_pi, 0.0, 1.0)
    s3 = _clamp(hidden_area(r), 0.0, 1.0)
    return DrtsOctsAreas(s1=s1, s2=s2, s3=s3)
