"""DRTS-DCTS: the all-directional scheme (Section 2.2).

Every packet — RTS, CTS, data and ACK — is beamed at the peer with
beamwidth ``theta``.  Spatial reuse is maximal, but nothing silences the
neighborhood, so the handshake stays vulnerable throughout.  The success
probability multiplies five independent no-interference events, one per
region of Fig. 3:

* **Area I** (the sender's beam sector): silent for one slot,
* **Area II** (receiver-exposed sliver): no beam at the receiver for the
  ``2*l_rts`` RTS window and silent when the receiver's reply lands,
* **Area III** (the lens covered by both disks): no beam at the pair for
  the entire handshake (``2*l_rts + l_cts + l_data + l_ack + 4`` slots,
  with the paper's ``theta' = theta`` simplification),
* **Area IV** (receiver-only region ``B(r)``): no beam at the sender
  while the receiver transmits CTS and ACK
  (``2*l_rts + l_cts + l_ack + 2`` slots),
* **Area V** (sender-only region): no beam at the receiver while the
  sender transmits RTS and data (``3*l_rts + l_data + 2`` slots).

Directional transmissions only threaten a victim with probability
``p' = p * theta / (2*pi)`` — the chance a random beam covers it.

Failed handshakes can be cut short at any point, so ``T_fail`` is the
mean of a geometric distribution truncated to
``[l_rts + 1, T_succeed]``.
"""

from __future__ import annotations

import math
from typing import ClassVar

from .geometry import drts_dcts_areas
from .schemes import CollisionAvoidanceScheme
from .truncgeom import truncated_geometric_mean

__all__ = ["DrtsDcts"]


class DrtsDcts(CollisionAvoidanceScheme):
    """Analytical model of the all-directional scheme.

    Args:
        params: protocol parameters.
        area3_span_factor: the Area-III direction-span choice.  The
            paper notes the true span ``theta'`` lies between ``theta``
            (nodes near the pair's axis) and ``2*theta``, then
            "for simplicity, we just choose theta' = theta".  Factor
            1.0 reproduces the paper; 2.0 gives the conservative upper
            bound; the two bracket the truth (see the ablation bench).
    """

    name: ClassVar[str] = "DRTS-DCTS"
    uses_directional_transmissions: ClassVar[bool] = True

    def __init__(self, params, area3_span_factor: float = 1.0) -> None:
        super().__init__(params)
        if not 1.0 <= area3_span_factor <= 2.0:
            raise ValueError(
                "area3_span_factor must be in [1, 2], got "
                f"{area3_span_factor!r}"
            )
        self.area3_span_factor = area3_span_factor

    def p_ww(self, p: float) -> float:
        """``P_ww = (1-p) * exp(-p' * N)`` with ``p' = p*theta/(2*pi)``.

        Only neighbors that happen to beam *at* the waiting node disturb
        it, hence the thinned probability ``p'``.
        """
        self._check_p(p)
        p_directional = p * self.params.directional_fraction
        return (1.0 - p) * math.exp(-p_directional * self.params.n_neighbors)

    def interference_free_probability(self, r: float, p: float) -> float:
        """``P_I(r) = p1 * p2 * p3 * p4 * p5`` over the five areas."""
        self._check_p(p)
        prm = self.params
        n = prm.n_neighbors
        p_dir = p * prm.directional_fraction
        areas = drts_dcts_areas(r, prm.beamwidth)

        p1 = math.exp(-p * areas.s1 * n)
        p2 = math.exp(-p_dir * areas.s2 * n * (2.0 * prm.l_rts)) * math.exp(
            -p * areas.s2 * n
        )
        whole_handshake = (
            2.0 * prm.l_rts + prm.l_cts + prm.l_data + prm.l_ack + 4.0
        )
        span = min(self.area3_span_factor * prm.beamwidth, 2.0 * math.pi)
        p_dir3 = p * span / (2.0 * math.pi)
        p3 = math.exp(-p_dir3 * areas.s3 * n * whole_handshake)
        receiver_tx = 2.0 * prm.l_rts + prm.l_cts + prm.l_ack + 2.0
        p4 = math.exp(-p_dir * areas.s4 * n * receiver_tx)
        sender_tx = 3.0 * prm.l_rts + prm.l_data + 2.0
        p5 = math.exp(-p_dir * areas.s5 * n * sender_tx)
        return p1 * p2 * p3 * p4 * p5

    def p_ws_at_distance(self, r: float, p: float) -> float:
        """``P_ws(r) = p * (1-p) * P_I(r)``."""
        return p * (1.0 - p) * self.interference_free_probability(r, p)

    def t_fail(self, p: float) -> float:
        """Mean of the truncated geometric failed period (equation (3))."""
        self._check_p(p)
        lower = self.params.l_rts + 1.0
        upper = self.params.t_succeed
        return truncated_geometric_mean(p, lower, upper)
