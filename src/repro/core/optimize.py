"""Maximum achievable throughput over the transmission probability ``p``.

Fig. 5 of the paper plots the *maximum* throughput of each scheme, i.e.
``max_p Th(p)``.  ``Th(p)`` is smooth and unimodal in practice (it
vanishes at both ends of ``(0, 1)``), so a coarse logarithmic grid scan
followed by bounded golden-section refinement around the best grid cell
is robust and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize as _sciopt

from .schemes import CollisionAvoidanceScheme

__all__ = ["ThroughputOptimum", "maximize_throughput"]

#: Smallest/largest transmission probabilities considered.  The paper
#: notes that collision avoidance keeps p small (≤ ~0.1), but we search a
#: wider range so the optimum is never clipped artificially.
DEFAULT_P_MIN = 1e-5
DEFAULT_P_MAX = 0.5


@dataclass(frozen=True)
class ThroughputOptimum:
    """Result of the throughput maximisation for one scheme instance."""

    p_opt: float
    throughput: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p_opt < 1.0:
            raise ValueError(f"p_opt out of (0, 1): {self.p_opt!r}")
        if self.throughput < 0.0:
            raise ValueError(f"negative throughput: {self.throughput!r}")


def maximize_throughput(
    scheme: CollisionAvoidanceScheme,
    p_min: float = DEFAULT_P_MIN,
    p_max: float = DEFAULT_P_MAX,
    grid_points: int = 48,
) -> ThroughputOptimum:
    """Find ``max_p Th(p)`` for one scheme.

    Args:
        scheme: a configured scheme instance.
        p_min: lower edge of the search interval (exclusive of 0).
        p_max: upper edge of the search interval (exclusive of 1).
        grid_points: size of the initial logarithmic scan grid.

    Returns:
        The optimising probability and the throughput it achieves.
    """
    if not 0.0 < p_min < p_max < 1.0:
        raise ValueError(
            f"need 0 < p_min < p_max < 1, got [{p_min!r}, {p_max!r}]"
        )
    if grid_points < 4:
        raise ValueError(f"grid_points must be >= 4, got {grid_points!r}")

    grid = np.logspace(np.log10(p_min), np.log10(p_max), grid_points)
    values = np.array([scheme.throughput(float(p)) for p in grid])
    best = int(values.argmax())

    lo = grid[max(best - 1, 0)]
    hi = grid[min(best + 1, grid_points - 1)]
    result = _sciopt.minimize_scalar(
        lambda p: -scheme.throughput(float(p)),
        bounds=(float(lo), float(hi)),
        method="bounded",
        options={"xatol": 1e-7},
    )
    p_refined = float(result.x)
    th_refined = -float(result.fun)
    # Keep whichever of grid / refined is better (refinement can only
    # help inside its bracket, which always contains the grid best).
    if th_refined >= values[best]:
        return ThroughputOptimum(p_opt=p_refined, throughput=th_refined)
    return ThroughputOptimum(p_opt=float(grid[best]), throughput=float(values[best]))
