"""ORTS-OCTS: the all-omni-directional RTS/CTS scheme (Section 2.1).

This is the classic sender-initiated collision-avoidance handshake used
by IEEE 802.11: every packet — RTS, CTS, data and ACK — is transmitted
omni-directionally.  Assuming *correct* collision avoidance (once the
receiver starts its CTS the rest of the handshake cannot be disturbed),
the only vulnerable window is the RTS itself:

* every neighbor of the sender must stay silent in the RTS slot, and
* every hidden terminal (in ``B(r)``) must stay silent for the
  ``2*l_rts + 1`` slots around the RTS.

Failed handshakes always cost ``l_rts + l_cts + 2`` slots.
"""

from __future__ import annotations

import math
from typing import ClassVar

from .geometry import hidden_area
from .schemes import CollisionAvoidanceScheme

__all__ = ["OrtsOcts"]


class OrtsOcts(CollisionAvoidanceScheme):
    """Analytical model of the all-omni-directional scheme."""

    name: ClassVar[str] = "ORTS-OCTS"
    uses_directional_transmissions: ClassVar[bool] = False

    def p_ww(self, p: float) -> float:
        """``P_ww = (1-p) * exp(-p*N)``.

        The node itself stays silent and none of its (Poisson many)
        neighbors starts transmitting.
        """
        self._check_p(p)
        return (1.0 - p) * math.exp(-p * self.params.n_neighbors)

    def p_ws_at_distance(self, r: float, p: float) -> float:
        """``P_ws(r) = P1 * P2 * P3 * P4(r)`` from Section 2.1."""
        self._check_p(p)
        n = self.params.n_neighbors
        p1 = p                               # x transmits
        p2 = 1.0 - p                         # y silent
        p3 = math.exp(-p * n)                # x's neighborhood silent
        vulnerable = 2.0 * self.params.l_rts + 1.0
        p4 = math.exp(-p * n * hidden_area(r) * vulnerable)
        return p1 * p2 * p3 * p4

    def t_fail(self, p: float) -> float:
        """Failures are detected right after the missing CTS window."""
        self._check_p(p)
        return self.params.t_fail_omni
