"""Monte-Carlo validation of the analytical model.

Two independent re-encodings of Section 2 that must agree with the
closed forms — used by tests and a bench to guard against algebra
errors in areas, durations and thinning probabilities:

1. :func:`estimate_p_ws_at_distance` — samples the paper's slotted
   interference model directly: for every interference constraint
   (region, per-slot transmit probability, duration) it draws a fresh
   Poisson node count per slot and Bernoulli transmission decisions per
   node, exactly mirroring the model's slot-independence assumption.
   The closed form multiplies ``exp(-q * S * N * d)`` terms; the
   sampler never sees an exponential.
2. :func:`simulate_node_chain` — walks the wait/succeed/fail chain for
   many transitions and measures renewal-reward throughput, which must
   match the ``Th`` formula.

The constraint tables below are written from the paper's Section 2
text, deliberately *not* derived from the scheme classes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .drts_dcts import DrtsDcts
from .drts_octs import DrtsOcts
from .geometry import drts_dcts_areas, drts_octs_areas, hidden_area
from .orts_octs import OrtsOcts
from .schemes import CollisionAvoidanceScheme

__all__ = [
    "InterferenceConstraint",
    "constraints_for",
    "estimate_p_ws_at_distance",
    "estimate_p_ws",
    "simulate_node_chain",
    "MonteCarloEstimate",
]


@dataclass(frozen=True)
class InterferenceConstraint:
    """"No node in ``area`` transmits (w.p. ``tx_probability`` per slot)
    for ``slots`` consecutive slots"."""

    area: float
    tx_probability: float
    slots: int

    def __post_init__(self) -> None:
        if self.area < 0:
            raise ValueError(f"area must be >= 0, got {self.area}")
        if not 0 <= self.tx_probability <= 1:
            raise ValueError(
                f"tx_probability must be in [0,1], got {self.tx_probability}"
            )
        if self.slots < 0:
            raise ValueError(f"slots must be >= 0, got {self.slots}")


def constraints_for(
    scheme: CollisionAvoidanceScheme, r: float, p: float
) -> list[InterferenceConstraint]:
    """The Section-2 interference constraints for one scheme at distance ``r``.

    Transcribed from the paper's text (Sections 2.1-2.3), not from the
    scheme classes, so tests comparing the two are meaningful.
    """
    prm = scheme.params
    p_dir = p * prm.beamwidth / (2 * math.pi)
    l_rts, l_cts = prm.l_rts, prm.l_cts
    l_data, l_ack = prm.l_data, prm.l_ack

    if isinstance(scheme, OrtsOcts):
        return [
            # "none of the nodes within R of x transmits in the same slot"
            InterferenceConstraint(1.0, p, 1),
            # "none of the nodes in B(r) transmits for (2 l_rts + 1) slots"
            InterferenceConstraint(hidden_area(r), p, int(2 * l_rts + 1)),
        ]
    if isinstance(scheme, DrtsOcts):
        areas = drts_octs_areas(r, prm.beamwidth)
        return [
            InterferenceConstraint(areas.s1, p, 1),
            InterferenceConstraint(areas.s2, p_dir, int(2 * l_rts)),
            InterferenceConstraint(areas.s2, p, 1),
            InterferenceConstraint(
                areas.s3, p_dir, int(2 * l_rts + l_cts + l_ack + 2)
            ),
        ]
    if isinstance(scheme, DrtsDcts):
        areas = drts_dcts_areas(r, prm.beamwidth)
        return [
            InterferenceConstraint(areas.s1, p, 1),
            InterferenceConstraint(areas.s2, p_dir, int(2 * l_rts)),
            InterferenceConstraint(areas.s2, p, 1),
            InterferenceConstraint(
                areas.s3, p_dir, int(2 * l_rts + l_cts + l_data + l_ack + 4)
            ),
            InterferenceConstraint(
                areas.s4, p_dir, int(2 * l_rts + l_cts + l_ack + 2)
            ),
            InterferenceConstraint(
                areas.s5, p_dir, int(3 * l_rts + l_data + 2)
            ),
        ]
    raise TypeError(f"no constraint table for {type(scheme).__name__}")


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A sample mean with its standard error."""

    mean: float
    std_error: float
    samples: int

    def within(self, reference: float, sigmas: float = 4.0, slack: float = 1e-3) -> bool:
        """Whether ``reference`` is statistically compatible."""
        return abs(self.mean - reference) <= sigmas * self.std_error + slack


def _region_silent(
    rng: random.Random,
    constraint: InterferenceConstraint,
    n_neighbors: float,
) -> bool:
    """One Bernoulli sample of "the region stays silent long enough".

    Per the paper's slot-independence, every slot sees a fresh Poisson
    field: draw the node count, then per-node transmission decisions.
    """
    lam = constraint.area * n_neighbors
    for _slot in range(constraint.slots):
        count = _poisson(rng, lam)
        for _node in range(count):
            if rng.random() < constraint.tx_probability:
                return False
    return True


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (lambda is always small here)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def estimate_p_ws_at_distance(
    scheme: CollisionAvoidanceScheme,
    r: float,
    p: float,
    rng: random.Random,
    samples: int = 20_000,
) -> MonteCarloEstimate:
    """Monte-Carlo estimate of ``P_ws(r)`` for one scheme."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    constraints = constraints_for(scheme, r, p)
    n = scheme.params.n_neighbors
    successes = 0
    for _ in range(samples):
        if rng.random() >= p:  # x must transmit
            continue
        if rng.random() < p:  # y must stay silent
            continue
        if all(_region_silent(rng, c, n) for c in constraints):
            successes += 1
    mean = successes / samples
    std_error = math.sqrt(max(mean * (1 - mean), 1e-12) / samples)
    return MonteCarloEstimate(mean=mean, std_error=std_error, samples=samples)


def estimate_p_ws(
    scheme: CollisionAvoidanceScheme,
    p: float,
    rng: random.Random,
    samples: int = 20_000,
) -> MonteCarloEstimate:
    """Monte-Carlo estimate of ``P_ws`` (distance integrated out).

    The receiver distance is sampled from the paper's neighbor density
    ``f(r) = 2r`` via the inverse transform ``r = sqrt(U)``.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    n = scheme.params.n_neighbors
    successes = 0
    for _ in range(samples):
        if rng.random() >= p:
            continue
        if rng.random() < p:
            continue
        r = math.sqrt(rng.random())
        constraints = constraints_for(scheme, r, p)
        if all(_region_silent(rng, c, n) for c in constraints):
            successes += 1
    mean = successes / samples
    std_error = math.sqrt(max(mean * (1 - mean), 1e-12) / samples)
    return MonteCarloEstimate(mean=mean, std_error=std_error, samples=samples)


def simulate_node_chain(
    scheme: CollisionAvoidanceScheme,
    p: float,
    rng: random.Random,
    transitions: int = 200_000,
) -> float:
    """Renewal-reward throughput of the wait/succeed/fail chain.

    Walks the three-state chain using the scheme's ``P_ww``/``P_ws``
    and accumulates slot counts per state; returns delivered payload
    slots over total slots — the empirical counterpart of ``Th``.
    """
    if transitions < 1:
        raise ValueError(f"transitions must be >= 1, got {transitions}")
    p_ww = scheme.p_ww(p)
    p_ws = scheme.p_ws(p)
    t_succeed = scheme.t_succeed()
    t_fail = scheme.t_fail(p)

    total_time = 0.0
    payload_time = 0.0
    for _ in range(transitions):
        draw = rng.random()
        if draw < p_ww:
            total_time += 1.0  # stay in wait one slot
        elif draw < p_ww + p_ws:
            total_time += 1.0 + t_succeed  # wait slot + handshake
            payload_time += scheme.params.l_data
        else:
            total_time += 1.0 + t_fail
    return payload_time / total_time
