"""Idealized busy-tone multiple access (BTMA) baseline.

The paper's model lineage runs through Tobagi & Kleinrock's busy-tone
solution to the hidden-terminal problem [8] and Wu & Varshney's BTMA
analysis in the same Poisson framework [10].  This module adds an
*idealized* BTMA point of comparison: the receiver raises an
out-of-band busy tone the moment a data packet starts arriving, and the
tone perfectly silences every node in its hearing disk.

Mapping into the node chain:

* The sender transmits data directly (no RTS/CTS).  The vulnerable
  window is one slot at the sender's neighborhood *plus* one slot at
  the hidden region ``B(r)`` — after the first slot the busy tone
  protects the rest of the packet.
* ``T_succeed = l_data + l_ack + 2``.
* A failure wastes the whole data frame: ``T_fail = l_data + 1``.

Even with a perfect tone, same-slot collisions still destroy whole
data frames, so BTMA wins over the RTS/CTS handshake only while data
packets are short — the crossover (around ``l_data ~ 20-50`` slots for
the paper's control sizes) is precisely the paper's Section-3 warrant
that long data packets justify an RTS/CTS handshake.
"""

from __future__ import annotations

import math
from typing import ClassVar

from .geometry import hidden_area
from .schemes import CollisionAvoidanceScheme

__all__ = ["IdealizedBtma"]


class IdealizedBtma(CollisionAvoidanceScheme):
    """Analytical model of idealized busy-tone multiple access."""

    name: ClassVar[str] = "BTMA-ideal"
    uses_directional_transmissions: ClassVar[bool] = False

    def t_succeed(self) -> float:
        """Data plus ACK, each with one turnaround slot (no handshake)."""
        return self.params.l_data + self.params.l_ack + 2.0

    def p_ww(self, p: float) -> float:
        """Same neighborhood-silence expression as the omni schemes."""
        self._check_p(p)
        return (1.0 - p) * math.exp(-p * self.params.n_neighbors)

    def p_ws_at_distance(self, r: float, p: float) -> float:
        """One vulnerable slot each at the neighborhood and ``B(r)``."""
        self._check_p(p)
        n = self.params.n_neighbors
        return (
            p
            * (1.0 - p)
            * math.exp(-p * n)          # sender's neighborhood, 1 slot
            * math.exp(-p * n * hidden_area(r))  # hidden region, 1 slot
        )

    def t_fail(self, p: float) -> float:
        """A failed transmission wastes the whole data frame."""
        self._check_p(p)
        return self.params.l_data + 1.0
