"""Protocol parameters for the analytical model.

The analytical model of the paper works in *normalized* units:

* distances are normalized to the transmission range ``R`` (so the
  sender-receiver distance ``r`` lies in ``(0, 1]``),
* areas are normalized to ``pi * R**2`` (the area of the hearing disk),
* packet lengths are expressed in time slots of duration ``tau``.

``N = lambda * pi * R**2`` is the mean number of nodes inside a hearing
disk, which is the only way node density enters the formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


__all__ = ["ProtocolParameters", "PAPER_PARAMETERS"]


@dataclass(frozen=True)
class ProtocolParameters:
    """Inputs shared by all three analytical schemes.

    Attributes:
        l_rts: RTS transmission time in slots.
        l_cts: CTS transmission time in slots.
        l_data: Data packet transmission time in slots.
        l_ack: ACK transmission time in slots.
        n_neighbors: ``N``, the average number of nodes within a circle
            of radius ``R`` (``N = lambda * pi * R**2``).
        beamwidth: Antenna beamwidth ``theta`` in radians.  Ignored by
            the all-omni-directional scheme.  Must lie in ``(0, 2*pi]``.
    """

    l_rts: float = 5.0
    l_cts: float = 5.0
    l_data: float = 100.0
    l_ack: float = 5.0
    n_neighbors: float = 3.0
    beamwidth: float = math.pi / 6

    def __post_init__(self) -> None:
        for name in ("l_rts", "l_cts", "l_data", "l_ack"):
            value = getattr(self, name)
            if not value > 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if not self.n_neighbors > 0:
            raise ValueError(
                f"n_neighbors must be positive, got {self.n_neighbors!r}"
            )
        if not 0 < self.beamwidth <= 2 * math.pi:
            raise ValueError(
                "beamwidth must be in (0, 2*pi] radians, got "
                f"{self.beamwidth!r}"
            )

    @property
    def t_succeed(self) -> float:
        """Duration of a successful four-way handshake in slots.

        ``T_succeed = l_rts + l_cts + l_data + l_ack + 4`` — each packet
        costs its length plus one slot of turnaround/propagation.
        """
        return self.l_rts + self.l_cts + self.l_data + self.l_ack + 4

    @property
    def t_fail_omni(self) -> float:
        """Duration of a failed handshake under ORTS-OCTS in slots.

        With correct (conservative) collision avoidance a failure is
        always detected after the RTS/CTS exchange window:
        ``T_fail = l_rts + l_cts + 2``.
        """
        return self.l_rts + self.l_cts + 2

    @property
    def directional_fraction(self) -> float:
        """``theta / (2*pi)``: the fraction of the plane covered by one beam."""
        return self.beamwidth / (2 * math.pi)

    def with_beamwidth(self, beamwidth: float) -> "ProtocolParameters":
        """Return a copy with a different antenna beamwidth."""
        return replace(self, beamwidth=beamwidth)

    def with_neighbors(self, n_neighbors: float) -> "ProtocolParameters":
        """Return a copy with a different mean neighbor count ``N``."""
        return replace(self, n_neighbors=n_neighbors)


#: The configuration used for all numerical results in the paper
#: (Section 3): RTS, CTS and ACK last 5 slots and data packets 100.
PAPER_PARAMETERS = ProtocolParameters(
    l_rts=5.0, l_cts=5.0, l_data=100.0, l_ack=5.0
)
