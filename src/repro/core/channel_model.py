"""The p <-> p0 relationship the paper deliberately skips.

Section 2: "a node becomes ready independently with probability p0 at
each time slot ... p = p0 * Prob.{Channel is sensed idle in a slot}",
and "Here we do not analyze the relationship between p and p0, as has
been done before [9, 10]".  This module reconstructs that relationship
in the spirit of those references, closing the loop for users who want
to reason in terms of offered load ``p0`` rather than the attempt
probability ``p``.

Model: a node senses the channel busy when at least one of its
(Poisson many) neighbors is mid-handshake.  A neighbor in the
stationary regime occupies the air for a fraction

    u(p) = (pi_s * T_s + pi_f * T_f) / (pi_w * 1 + pi_s * T_s + pi_f * T_f)

of slots, so by Poisson thinning the channel is sensed idle with
probability ``exp(-N * u(p))`` and the attempt probability solves the
fixed point

    p = p0 * exp(-N * u(p)).

The map's right side decreases in ``p``, so simple damped iteration
converges; ``p <= p0`` always, and ``p`` saturates as offered load
grows — the congestion self-throttling that carrier sensing provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from .schemes import CollisionAvoidanceScheme

__all__ = ["ChannelFeedback", "attempt_probability", "airtime_fraction"]


def airtime_fraction(scheme: CollisionAvoidanceScheme, p: float) -> float:
    """Fraction of slots a saturated node spends transmitting."""
    pi = scheme.stationary(p)
    busy = pi.succeed * scheme.t_succeed() + pi.fail * scheme.t_fail(p)
    total = pi.wait * 1.0 + busy
    return busy / total


@dataclass(frozen=True)
class ChannelFeedback:
    """Result of the fixed-point solve."""

    p0: float
    p: float
    idle_probability: float
    iterations: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= self.p0 <= 1.0:
            raise ValueError(
                f"expected 0 <= p <= p0 <= 1, got p={self.p}, p0={self.p0}"
            )


def attempt_probability(
    scheme: CollisionAvoidanceScheme,
    p0: float,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
) -> ChannelFeedback:
    """Solve ``p = p0 * exp(-N * u(p))`` by damped fixed-point iteration.

    Args:
        scheme: the collision-avoidance scheme (its stationary chain
            supplies the airtime fraction).
        p0: per-slot readiness probability (offered load), in (0, 1).
        tolerance: absolute convergence threshold on ``p``.
        max_iterations: iteration cap (raises if exceeded).

    Returns:
        The converged :class:`ChannelFeedback`.
    """
    if not 0.0 < p0 < 1.0:
        raise ValueError(f"p0 must be in (0, 1), got {p0!r}")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance!r}")

    import math

    n = scheme.params.n_neighbors
    p = p0  # start from the no-feedback guess
    for iteration in range(1, max_iterations + 1):
        idle = math.exp(-n * airtime_fraction(scheme, p))
        updated = p0 * idle
        # Damping stabilises the oscillation of the decreasing map.
        updated = 0.5 * (p + updated)
        if abs(updated - p) < tolerance:
            return ChannelFeedback(
                p0=p0,
                p=min(updated, p0),
                idle_probability=idle,
                iterations=iteration,
            )
        p = updated
    raise RuntimeError(
        f"fixed point did not converge within {max_iterations} iterations "
        f"(p0={p0}, last p={p})"
    )
