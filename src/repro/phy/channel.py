"""The shared single-channel radio medium.

The channel knows every radio's position and, for each transmission,
computes *who can hear it*: exactly the radios within range ``R`` whose
bearing from the transmitter lies inside the transmit antenna pattern
(complete attenuation outside the beam, per the paper's model).  Each
audible radio gets a ``signal start`` event after the propagation delay
and a ``signal end`` event one air time later; everything else —
collision detection, capture-free corruption, deafness while
transmitting — is the receiving radio's business.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dessim.engine import Simulator
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY
from .antenna import AntennaPattern
from .frames import Frame, FrameType, PhyParameters
from .propagation import Position, UnitDiskPropagation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .radio import Radio

__all__ = ["Transmission", "Channel", "ChannelStats"]


@dataclass(frozen=True)
class Transmission:
    """One frame in flight on the medium."""

    tx_id: int
    sender: int
    frame: Frame
    pattern: AntennaPattern
    start_ns: int
    airtime_ns: int

    @property
    def end_ns(self) -> int:
        """Time the transmitter stops radiating."""
        return self.start_ns + self.airtime_ns


@dataclass
class ChannelStats:
    """Medium-level accounting, mostly for tests and sanity checks."""

    transmissions: int = 0
    frames_by_type: dict[FrameType, int] = field(default_factory=dict)
    airtime_ns: int = 0
    airtime_by_type_ns: dict[FrameType, int] = field(default_factory=dict)

    def record(self, frame: Frame, airtime_ns: int) -> None:
        self.transmissions += 1
        self.frames_by_type[frame.ftype] = (
            self.frames_by_type.get(frame.ftype, 0) + 1
        )
        self.airtime_ns += airtime_ns
        self.airtime_by_type_ns[frame.ftype] = (
            self.airtime_by_type_ns.get(frame.ftype, 0) + airtime_ns
        )


class Channel:
    """Broadcast medium connecting all attached radios."""

    def __init__(
        self,
        sim: Simulator,
        phy: PhyParameters | None = None,
        propagation: UnitDiskPropagation | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.phy = phy if phy is not None else PhyParameters()
        self.propagation = (
            propagation if propagation is not None else UnitDiskPropagation()
        )
        self._radios: dict[int, "Radio"] = {}
        self._next_tx_id = 0
        self.stats = ChannelStats()
        # Instruments resolved once here: without a registry these are
        # the shared null instruments, so the per-transmission cost in
        # an unobserved run is two empty method calls.
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._tx_counter = registry.counter("phy.transmissions")
        self._airtime_counter = registry.counter("phy.airtime_ns")

    # ------------------------------------------------------------------

    def attach(self, radio: "Radio") -> None:
        """Register a radio on the medium.  Node ids must be unique."""
        if radio.node_id in self._radios:
            raise ValueError(f"node id {radio.node_id} already attached")
        self._radios[radio.node_id] = radio

    @property
    def radios(self) -> dict[int, "Radio"]:
        """Attached radios keyed by node id (read-only view by convention)."""
        return self._radios

    def audible_nodes(self, sender: "Radio", pattern: AntennaPattern) -> list[int]:
        """Node ids that would hear a transmission from ``sender``."""
        audible = []
        for node_id, radio in self._radios.items():
            if node_id == sender.node_id:
                continue
            if not self.propagation.reaches(sender.position, radio.position):
                continue
            bearing = sender.position.bearing_to(radio.position)
            if not pattern.covers(bearing):
                continue
            audible.append(node_id)
        return audible

    def neighbors_of(self, node_id: int) -> list[int]:
        """Node ids within range of the given node (omni ground truth)."""
        me = self._radios[node_id]
        return [
            other_id
            for other_id, radio in self._radios.items()
            if other_id != node_id
            and self.propagation.reaches(me.position, radio.position)
        ]

    def position_of(self, node_id: int) -> Position:
        """Ground-truth position of a node (the oracle neighbor protocol)."""
        return self._radios[node_id].position

    # ------------------------------------------------------------------

    def transmit(
        self, sender: "Radio", frame: Frame, pattern: AntennaPattern
    ) -> Transmission:
        """Put a frame on the air.

        Schedules signal start/end at every audible radio; returns the
        transmission record (the sender uses it to time its own TX-done).
        """
        airtime = self.phy.airtime_ns(frame.size_bytes)
        tx = Transmission(
            tx_id=self._next_tx_id,
            sender=sender.node_id,
            frame=frame,
            pattern=pattern,
            start_ns=self.sim.now,
            airtime_ns=airtime,
        )
        self._next_tx_id += 1
        self.stats.record(frame, airtime)
        self._tx_counter.inc()
        self._airtime_counter.inc(airtime)

        for node_id in self.audible_nodes(sender, pattern):
            radio = self._radios[node_id]
            delay = self.propagation.delay(sender.position, radio.position)
            power = self.propagation.rx_power(sender.position, radio.position)
            self.sim.schedule(delay, radio.on_signal_start, tx, power)
            self.sim.schedule(delay + airtime, radio.on_signal_end, tx)
        return tx
