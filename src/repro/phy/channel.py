"""The shared single-channel radio medium.

The channel knows every radio's position and, for each transmission,
computes *who can hear it*: exactly the radios whose link budget under
the channel's :mod:`~repro.phy.reception` model says the signal is
audible (for the default unit-disk model: within range ``R``) and
whose bearing from the transmitter lies inside the transmit antenna
pattern (complete attenuation outside the beam, per the paper's
model).  Each audible radio gets a ``signal start`` event after the
propagation delay and a ``signal end`` event one air time later;
everything else — collision detection, corruption, capture, deafness
while transmitting — is the receiving radio's reception model's
business.

Audibility is resolved through a :class:`~repro.phy.linkcache.LinkCache`
by default — per-pair geometry cached with epoch invalidation and
sector-indexed per-sender rows — which is bit-identical to the naive
all-radios trig scan (``link_cache=False`` keeps the naive path for
equivalence testing).  See ``docs/api.md``, "Channel fast path".
"""

from __future__ import annotations

from collections import Counter as CounterDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dessim.engine import Simulator
from .antenna import AntennaPattern
from .frames import Frame, FrameType, PhyParameters
from .linkcache import DEFAULT_SECTORS, Link, LinkCache
from .propagation import Position, UnitDiskPropagation
from .reception.base import ReceptionModel
from .reception.unitdisk import UnitDiskReception

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.metrics import MetricsRegistry
    from .radio import Radio

__all__ = ["Transmission", "Channel", "ChannelStats"]


@dataclass(frozen=True)
class Transmission:
    """One frame in flight on the medium."""

    tx_id: int
    sender: int
    frame: Frame
    pattern: AntennaPattern
    start_ns: int
    airtime_ns: int

    @property
    def end_ns(self) -> int:
        """Time the transmitter stops radiating."""
        return self.start_ns + self.airtime_ns


@dataclass
class ChannelStats:
    """Medium-level accounting, harvested into telemetry after a run."""

    transmissions: int = 0
    frames_by_type: CounterDict[FrameType] = field(default_factory=CounterDict)
    airtime_ns: int = 0
    airtime_by_type_ns: CounterDict[FrameType] = field(default_factory=CounterDict)

    def record(self, frame: Frame, airtime_ns: int) -> None:
        ftype = frame.ftype
        self.transmissions += 1
        self.frames_by_type[ftype] += 1
        self.airtime_ns += airtime_ns
        self.airtime_by_type_ns[ftype] += airtime_ns

    def publish(self, metrics: "MetricsRegistry", prefix: str = "phy") -> None:
        """Accumulate these counters into a telemetry registry.

        Same harvest-don't-increment contract as
        :meth:`repro.mac.stats.MacStats.publish`: the channel counts its
        hot path in this bundle and telemetry harvests the totals after
        a run, so an attached registry costs the transmit path nothing.
        Every frame type is published (zero or not) so snapshot keys are
        stable across runs; iteration follows the ``FrameType`` enum
        order, never insertion order.
        """
        counter = metrics.counter
        counter(f"{prefix}.transmissions").inc(self.transmissions)
        counter(f"{prefix}.airtime_ns").inc(self.airtime_ns)
        for ftype in FrameType:
            counter(f"{prefix}.frames.{ftype.value}").inc(
                self.frames_by_type[ftype]
            )
            counter(f"{prefix}.airtime.{ftype.value}_ns").inc(
                self.airtime_by_type_ns[ftype]
            )


class Channel:
    """Broadcast medium connecting all attached radios."""

    def __init__(
        self,
        sim: Simulator,
        phy: PhyParameters | None = None,
        propagation: UnitDiskPropagation | None = None,
        link_cache: bool = True,
        sectors: int = DEFAULT_SECTORS,
        reception: ReceptionModel | None = None,
    ) -> None:
        """Build the medium.

        Args:
            reception: the who-hears-what physics; ``None`` (default)
                builds a :class:`~repro.phy.reception.unitdisk.
                UnitDiskReception` over ``propagation`` with the PHY's
                legacy ``capture_threshold`` — exactly the
                pre-subsystem channel semantics.  When a model is
                passed, its own propagation is used and ``propagation``
                must be omitted (one source of geometry per medium).
        """
        self.sim = sim
        self.phy = phy if phy is not None else PhyParameters()
        if reception is None:
            reception = UnitDiskReception(
                propagation if propagation is not None else UnitDiskPropagation(),
                capture_threshold=self.phy.capture_threshold,
            )
        elif propagation is not None and propagation is not reception.propagation:
            raise ValueError(
                "pass either a propagation or a reception model, not "
                "conflicting both (the reception model owns its propagation)"
            )
        self.reception = reception
        self.propagation = reception.propagation
        self._radios: dict[int, "Radio"] = {}
        self._next_tx_id = 0
        self.stats = ChannelStats()
        self._cache: LinkCache | None = (
            LinkCache(reception, self._radios, sectors=sectors)
            if link_cache
            else None
        )

    # ------------------------------------------------------------------

    def attach(self, radio: "Radio") -> None:
        """Register a radio on the medium.  Node ids must be unique."""
        if radio.node_id in self._radios:
            raise ValueError(f"node id {radio.node_id} already attached")
        self._radios[radio.node_id] = radio
        if self._cache is not None:
            self._cache.note_attached(radio.node_id)

    @property
    def radios(self) -> dict[int, "Radio"]:
        """Attached radios keyed by node id (read-only view by convention)."""
        return self._radios

    @property
    def cache(self) -> LinkCache | None:
        """The link/geometry cache, or ``None`` on the naive path."""
        return self._cache

    def note_moved(self, node_id: int) -> None:
        """A radio's position changed (``Radio.position``'s setter)."""
        if self._cache is not None:
            self._cache.note_moved(node_id)

    def audible_nodes(self, sender: "Radio", pattern: AntennaPattern) -> list[int]:
        """Node ids that would hear a transmission from ``sender``."""
        if self._cache is not None:
            return [
                entry[0]
                for entry in self._cache.audible_entries(sender.node_id, pattern)
            ]
        audible = []
        link_budget = self.reception.link_budget
        for node_id, radio in self._radios.items():
            if node_id == sender.node_id:
                continue
            if not link_budget(
                sender.node_id, node_id, sender.position, radio.position
            )[0]:
                continue
            bearing = sender.position.bearing_to(radio.position)
            if not pattern.covers(bearing):
                continue
            audible.append(node_id)
        return audible

    def neighbors_of(self, node_id: int) -> list[int]:
        """Node ids audible from the given node (omni ground truth)."""
        if self._cache is not None:
            return self._cache.neighbors_of(node_id)
        me = self._radios[node_id]
        link_budget = self.reception.link_budget
        return [
            other_id
            for other_id, radio in self._radios.items()
            if other_id != node_id
            and link_budget(node_id, other_id, me.position, radio.position)[0]
        ]

    def position_of(self, node_id: int) -> Position:
        """Ground-truth position of a node (the oracle neighbor protocol)."""
        return self._radios[node_id].position

    def link(self, src_id: int, dst_id: int) -> Link:
        """Pair geometry from ``src_id`` to ``dst_id`` (cached when on).

        One lookup serves range, distance, bearing, delay and power —
        the :class:`~repro.mac.neighbors.NeighborTable` point queries
        resolve through this instead of re-deriving trig per call.
        """
        if self._cache is not None:
            return self._cache.link(src_id, dst_id)
        src = self._radios[src_id].position
        dst = self._radios[dst_id].position
        audible, rx_power = self.reception.link_budget(src_id, dst_id, src, dst)
        return Link(
            in_range=audible,
            distance_m=src.distance_to(dst),
            bearing=src.bearing_to(dst),
            delay_ns=self.propagation.delay(src, dst),
            rx_power=rx_power,
        )

    # ------------------------------------------------------------------

    def transmit(
        self, sender: "Radio", frame: Frame, pattern: AntennaPattern
    ) -> Transmission:
        """Put a frame on the air.

        Schedules signal start/end at every audible radio; returns the
        transmission record (the sender uses it to time its own TX-done).
        """
        airtime = self.phy.airtime_ns(frame.size_bytes)
        tx = Transmission(
            tx_id=self._next_tx_id,
            sender=sender.node_id,
            frame=frame,
            pattern=pattern,
            start_ns=self.sim.now,
            airtime_ns=airtime,
        )
        self._next_tx_id += 1
        self.stats.record(frame, airtime)

        # Bulk fan-out: per-receiver delay/power come straight off the
        # cached link row, and the start/end events go through the
        # engine's pooled fire-and-forget path — nobody holds a handle
        # to a signal event, so the scheduler recycles the objects and
        # the per-receiver loop allocates nothing in steady state.
        radios = self._radios
        schedule = self.sim.schedule_anon
        if self._cache is not None:
            for node_id, _bearing, delay, power in self._cache.audible_entries(
                sender.node_id, pattern
            ):
                radio = radios[node_id]
                schedule(delay, radio.on_signal_start, tx, power)
                schedule(delay + airtime, radio.on_signal_end, tx)
            return tx
        for node_id in self.audible_nodes(sender, pattern):
            radio = radios[node_id]
            delay = self.propagation.delay(sender.position, radio.position)
            _, power = self.reception.link_budget(
                sender.node_id, node_id, sender.position, radio.position
            )
            schedule(delay, radio.on_signal_start, tx, power)
            schedule(delay + airtime, radio.on_signal_end, tx)
        return tx
