"""Positions and the unit-disk propagation model.

The paper gives every node the same transmission and reception range
``R`` and models no fading, capture or partial attenuation: a signal is
heard iff the receiver is within range of the transmitter *and* inside
the transmit beam.  Propagation delay is the fixed 1 us of Table 1
(distance-independent — at 300 m ranges the true spread is ~1 us, and
the paper treats it as a constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dessim.units import microseconds

__all__ = ["Position", "UnitDiskPropagation"]


@dataclass(frozen=True)
class Position:
    """A point on the 2-D plane (meters)."""

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"coordinates must be finite, got ({self.x}, {self.y})")

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to another position."""
        return math.hypot(other.x - self.x, other.y - self.y)

    def bearing_to(self, other: "Position") -> float:
        """Direction from this position to another, in ``(-pi, pi]``.

        The bearing of a co-located target is defined as 0; callers that
        care should check for zero distance themselves.
        """
        return math.atan2(other.y - self.y, other.x - self.x)


@dataclass(frozen=True)
class UnitDiskPropagation:
    """Range-``R`` disk geometry with a constant delay.

    This class answers the purely geometric questions — can a signal
    cover the distance, and how long does it take?  What a receiver
    *makes* of an audible signal (received power, collisions, capture)
    is the business of a :mod:`repro.phy.reception` model; the
    received-power law lives there, in exactly one place.

    Attributes:
        range_m: the common transmission/reception range ``R``.
        delay_ns: fixed propagation delay (Table 1: 1 us).
    """

    range_m: float = 300.0
    delay_ns: int = microseconds(1)

    def __post_init__(self) -> None:
        if not self.range_m > 0:
            raise ValueError(f"range must be positive, got {self.range_m!r}")
        if self.delay_ns < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay_ns!r}")

    def reaches(self, src: Position, dst: Position) -> bool:
        """Whether a transmission from ``src`` can impinge on ``dst``.

        The range edge is inclusive, matching the analytical model where
        the neighbor distance density ``f(r) = 2r`` extends to ``r = R``.
        """
        return src.distance_to(dst) <= self.range_m

    def delay(self, src: Position, dst: Position) -> int:
        """Propagation delay from ``src`` to ``dst`` in nanoseconds."""
        return self.delay_ns
