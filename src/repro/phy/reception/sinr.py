"""SINR/capture reception: path loss, shadowing, sensitivity, capture.

The interference-limited physics the paper deliberately abstracts
away (and arXiv:1509.02325 analyses for directional antennas):

* **Log-distance path loss** — received power in dBm is
  ``tx_power_dbm - (reference_loss_db
  + 10 * pathloss_exponent * log10(d / reference_distance_m))``.
* **Lognormal shadowing** — a zero-mean gaussian in the dB domain,
  scaled by ``shadowing_sigma_db``, drawn once per *ordered* node pair
  from a registry-named RNG stream (``shadow-{src}-{dst}``).  The draw
  is memoized on first query, so link budgets are a pure function of
  ``(registry seed, src, dst)`` regardless of query order, and the two
  directions of a pair shadow independently — the model can express a
  node that hears a neighbor it cannot reach back (the classic
  asymmetric link).
* **Sensitivity** — a signal below ``sensitivity_dbm`` at the receiver
  is not audible at all: the channel never schedules its edges, so it
  neither decodes nor interferes.  (LoRa-style reception tables make
  the same cut before any collision reasoning.)
* **SINR capture** — the receiver locks onto a signal only while its
  power over ``noise + sum of all other impinging powers`` (linear
  domain) stays at or above the capture threshold.  Every later
  arrival re-checks the ongoing reception, so a frame can die mid-air;
  conversely a frame that overlaps weaker garbage end-to-end is
  *captured* and delivered where the unit-disk model corrupts both.
  A frame is delivered iff it was being decoded for its whole airtime.

Determinism contract: all randomness flows through the injected
:class:`~repro.dessim.rng.RngRegistry`; equal seeds give equal
shadowing maps, equal audibility, and equal outcomes, bit-for-bit,
on every platform the registry's SHA-256 derivation covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...dessim.rng import RngRegistry
from ..propagation import Position, UnitDiskPropagation
from .base import Receiver, ReceptionModel, RxOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..channel import Transmission

__all__ = ["SinrCaptureReception", "SinrReceiver", "dbm_to_mw", "mw_to_dbm"]


def dbm_to_mw(dbm: float) -> float:
    """Linear power (mW) of a dBm level."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """dBm level of a linear power (mW); requires ``mw > 0``."""
    if mw <= 0:
        raise ValueError(f"power must be positive, got {mw!r}")
    return 10.0 * math.log10(mw)


@dataclass(slots=True)
class _SinrSignal:
    """Book-keeping for one signal impinging on a SINR receiver."""

    tx: "Transmission"
    power_mw: float
    corrupted: bool = False
    missed: bool = False
    #: Whether any other signal overlapped this one while decoding it.
    overlapped: bool = False


class SinrReceiver(Receiver):
    """Whole-airtime SINR tracking with capture and mid-air drops."""

    __slots__ = ("noise_mw", "capture_ratio", "_rx_current")

    def __init__(self, noise_mw: float, capture_ratio: float) -> None:
        super().__init__()
        self.noise_mw = noise_mw
        #: Linear SINR the decoded signal must keep for its whole airtime.
        self.capture_ratio = capture_ratio
        self._rx_current: int | None = None

    def signal_start(self, tx: "Transmission", power: float, deaf: bool) -> bool:
        record = _SinrSignal(tx, power)
        records = self.records
        if deaf:
            record.missed = True
        elif records:
            if self._rx_current is not None:
                # Re-check the ongoing reception against the grown
                # interference; the newcomer's preamble overlapped a
                # locked decode either way, so it can never be taken.
                current = records[self._rx_current]
                current.overlapped = True
                interference = (
                    self.noise_mw
                    + sum(s.power_mw for s in records.values())
                    - current.power_mw
                    + power
                )
                if current.power_mw < self.capture_ratio * interference:
                    current.corrupted = True
                    self._rx_current = None
                    self.sinr_drops += 1
                record.missed = True
            else:
                # Only garbage in the air: capture the newcomer if it
                # clears noise plus everything else by the threshold.
                interference = self.noise_mw + sum(
                    s.power_mw for s in records.values()
                )
                if power >= self.capture_ratio * interference:
                    self._rx_current = tx.tx_id
                    record.overlapped = True
                else:
                    record.missed = True
        else:
            # Idle medium: lock on iff the signal clears the noise floor.
            if power >= self.capture_ratio * self.noise_mw:
                self._rx_current = tx.tx_id
            else:
                record.missed = True
        records[tx.tx_id] = record
        return self._rx_current == tx.tx_id

    def signal_end(self, tx: "Transmission", transmitting: bool) -> RxOutcome | None:
        record = self.records.pop(tx.tx_id, None)
        if record is None:  # pragma: no cover - channel never double-ends
            return None
        decoded = self._rx_current == tx.tx_id
        if decoded:
            self._rx_current = None
        if decoded and not record.corrupted and not record.missed:
            if record.overlapped:
                self.captures += 1
            return RxOutcome.DELIVERED
        if record.corrupted and not record.missed and not transmitting:
            return RxOutcome.FAILED
        return RxOutcome.SILENT

    def abandon(self) -> None:
        for record in self.records.values():
            record.missed = True
        self._rx_current = None


class SinrCaptureReception(ReceptionModel):
    """Log-distance + shadowing link budgets with SINR capture receivers."""

    name = "sinr"

    def __init__(
        self,
        propagation: UnitDiskPropagation,
        registry: RngRegistry,
        *,
        tx_power_dbm: float = 20.0,
        pathloss_exponent: float = 3.0,
        reference_distance_m: float = 1.0,
        reference_loss_db: float = 40.0,
        shadowing_sigma_db: float = 6.0,
        sensitivity_dbm: float = -94.0,
        noise_dbm: float = -104.0,
        capture_threshold_db: float = 10.0,
    ) -> None:
        super().__init__(propagation)
        if not pathloss_exponent > 0:
            raise ValueError(
                f"pathloss exponent must be positive, got {pathloss_exponent!r}"
            )
        if not reference_distance_m > 0:
            raise ValueError(
                f"reference distance must be positive, got {reference_distance_m!r}"
            )
        if shadowing_sigma_db < 0:
            raise ValueError(
                f"shadowing sigma must be >= 0, got {shadowing_sigma_db!r}"
            )
        if sensitivity_dbm < noise_dbm:
            raise ValueError(
                f"sensitivity ({sensitivity_dbm} dBm) below the noise floor "
                f"({noise_dbm} dBm) would deliver pure-noise receptions"
            )
        self.registry = registry
        self.tx_power_dbm = tx_power_dbm
        self.pathloss_exponent = pathloss_exponent
        self.reference_distance_m = reference_distance_m
        self.reference_loss_db = reference_loss_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self.sensitivity_dbm = sensitivity_dbm
        self.noise_dbm = noise_dbm
        self.capture_threshold_db = capture_threshold_db
        self._sensitivity_mw = dbm_to_mw(sensitivity_dbm)
        self._noise_mw = dbm_to_mw(noise_dbm)
        self._capture_ratio = dbm_to_mw(capture_threshold_db)  # dB -> ratio
        self._shadowing_db: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------

    def shadowing_db(self, src_id: int, dst_id: int) -> float:
        """The pair's shadowing term (dB), drawn once and memoized.

        One ``shadow-{src}-{dst}`` stream per ordered pair: a unit
        gaussian scaled by ``shadowing_sigma_db``, so the value is a
        pure function of the registry seed and the pair — independent
        of when (or how often) the link is queried, and stable across
        mobility (per-pair, not per-position, the standard
        simplification).
        """
        key = (src_id, dst_id)
        value = self._shadowing_db.get(key)
        if value is None:
            draw = self.registry.stream(f"shadow-{src_id}-{dst_id}").gauss(0.0, 1.0)
            value = draw * self.shadowing_sigma_db
            self._shadowing_db[key] = value
        return value

    def rx_power_dbm(
        self, src_id: int, dst_id: int, src: Position, dst: Position
    ) -> float:
        """Received power (dBm) under log-distance loss + shadowing."""
        distance = max(src.distance_to(dst), self.reference_distance_m)
        path_loss_db = self.reference_loss_db + (
            10.0
            * self.pathloss_exponent
            * math.log10(distance / self.reference_distance_m)
        )
        return self.tx_power_dbm - path_loss_db + self.shadowing_db(src_id, dst_id)

    def link_budget(
        self, src_id: int, dst_id: int, src: Position, dst: Position
    ) -> tuple[bool, float]:
        """Audible iff the received power clears the sensitivity floor.

        Powers are linear (mW) so receivers can sum interference
        directly; sub-sensitivity signals are invisible — they neither
        decode nor interfere, which is what makes asymmetric links
        possible at the MAC layer.
        """
        power_mw = dbm_to_mw(self.rx_power_dbm(src_id, dst_id, src, dst))
        return (power_mw >= self._sensitivity_mw, power_mw)

    def make_receiver(self) -> SinrReceiver:
        return SinrReceiver(self._noise_mw, self._capture_ratio)
