"""The paper's reception physics as a :class:`ReceptionModel`.

Audibility is binary — within range ``R`` and inside the transmit
beam — and any overlap of audible signals corrupts everything unless
an explicit SNR capture threshold is configured (GloMoSim's
RADIO-ACCNOISE behaviour, threaded from
:attr:`~repro.phy.frames.PhyParameters.capture_threshold`).

This module is a *relocation*, not a reinterpretation: the receiver
logic is the decision tree that used to live inline in
``Radio.on_signal_start``/``on_signal_end``, and the received-power
law is the ``d**-alpha`` free-space form that used to live on
:class:`~repro.phy.propagation.UnitDiskPropagation`.  The equivalence
suite (``tests/integration/test_reception_equivalence.py``) pins this
path bit-identical to the pre-subsystem channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..propagation import Position, UnitDiskPropagation
from .base import Receiver, ReceptionModel, RxOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..channel import Transmission

__all__ = ["UnitDiskReception", "UnitDiskReceiver"]


@dataclass(slots=True)
class _SignalRecord:
    """Book-keeping for one signal currently impinging on this radio."""

    tx: "Transmission"
    power: float = 1.0
    corrupted: bool = False
    missed: bool = False  # preamble lost (we were deaf when it started)


# Hoisted enum members: signal_end sits on the per-signal hot path and
# the class-attribute lookups measurably cost there.
_DELIVERED = RxOutcome.DELIVERED
_FAILED = RxOutcome.FAILED
_SILENT = RxOutcome.SILENT


class UnitDiskReceiver(Receiver):
    """Collision-if-overlap reception, with optional SNR capture."""

    __slots__ = ("capture_threshold", "_rx_current")

    def __init__(self, capture_threshold: float | None) -> None:
        super().__init__()
        self.capture_threshold = capture_threshold
        self._rx_current: int | None = None

    def signal_start(self, tx: "Transmission", power: float, deaf: bool) -> bool:
        record = _SignalRecord(tx, power)
        threshold = self.capture_threshold
        records = self.records
        if deaf:
            # Deaf: the preamble is lost forever.
            record.missed = True
        elif records:
            if threshold is None:
                # No capture: everything in the air here is garbage.
                record.corrupted = True
                for other in records.values():
                    other.corrupted = True
                self._rx_current = None
            elif self._rx_current is not None:
                # SNR check for the ongoing reception; the newcomer's
                # preamble overlapped it either way.
                current = records[self._rx_current]
                interference = (
                    sum(s.power for s in records.values())
                    - current.power
                    + power
                )
                if current.power < threshold * interference:
                    current.corrupted = True
                    self._rx_current = None
                record.missed = True
            else:
                # Background garbage only: capture the newcomer if it
                # dominates the sum of everything else.
                interference = sum(s.power for s in records.values())
                if power >= threshold * interference:
                    self._rx_current = tx.tx_id
                else:
                    record.missed = True
        else:
            # Clean start on an idle medium: begin decoding.
            self._rx_current = tx.tx_id
        records[tx.tx_id] = record
        return self._rx_current == tx.tx_id

    def signal_end(self, tx: "Transmission", transmitting: bool) -> RxOutcome | None:
        record = self.records.pop(tx.tx_id, None)
        if record is None:  # pragma: no cover - channel never double-ends
            return None
        decoded = self._rx_current == tx.tx_id
        if decoded:
            self._rx_current = None
        if decoded and not record.corrupted and not record.missed:
            return _DELIVERED
        if record.corrupted and not record.missed and not transmitting:
            return _FAILED
        return _SILENT

    def abandon(self) -> None:
        # The energy stays tracked; the frames can no longer deliver.
        for record in self.records.values():
            record.missed = True
        self._rx_current = None


class UnitDiskReception(ReceptionModel):
    """Binary range-``R`` audibility with relative ``d**-alpha`` powers."""

    name = "unitdisk"

    def __init__(
        self,
        propagation: UnitDiskPropagation,
        capture_threshold: float | None = None,
        pathloss_exponent: float = 2.0,
    ) -> None:
        super().__init__(propagation)
        if not pathloss_exponent > 0:
            raise ValueError(
                f"pathloss exponent must be positive, got {pathloss_exponent!r}"
            )
        self.capture_threshold = capture_threshold
        self.pathloss_exponent = pathloss_exponent

    def link_budget(
        self, src_id: int, dst_id: int, src: Position, dst: Position
    ) -> tuple[bool, float]:
        """Audible iff within range; power is the relative path-loss law.

        Power is normalized so a receiver 1 m away sees 1.0; distances
        below 1 m are clamped to avoid singularities.
        """
        return (
            self.propagation.reaches(src, dst),
            max(src.distance_to(dst), 1.0) ** -self.pathloss_exponent,
        )

    def make_receiver(self) -> UnitDiskReceiver:
        return UnitDiskReceiver(self.capture_threshold)
