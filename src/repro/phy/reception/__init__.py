"""Pluggable reception models: who hears what, and what survives.

See :mod:`repro.phy.reception.base` for the contract,
:mod:`~repro.phy.reception.unitdisk` for the paper's model (the
default and the equivalence oracle), and
:mod:`~repro.phy.reception.sinr` for the SINR/capture model.
"""

from .base import ReceptionModel, Receiver, RxOutcome
from .config import RECEPTION_MODELS, PhyConfig
from .sinr import SinrCaptureReception, SinrReceiver, dbm_to_mw, mw_to_dbm
from .unitdisk import UnitDiskReceiver, UnitDiskReception

__all__ = [
    "ReceptionModel",
    "Receiver",
    "RxOutcome",
    "PhyConfig",
    "RECEPTION_MODELS",
    "UnitDiskReception",
    "UnitDiskReceiver",
    "SinrCaptureReception",
    "SinrReceiver",
    "dbm_to_mw",
    "mw_to_dbm",
]
