"""Declarative reception-model selection, fingerprint-friendly.

:class:`PhyConfig` is the picklable, ``dataclasses.asdict``-able knob
bundle that study configurations embed: every field lands in the
campaign store's ``config_fingerprint``, so two campaigns that differ
in any reception knob refuse to share a directory.  ``build`` turns
the record into a live :class:`~repro.phy.reception.base.
ReceptionModel` inside the worker process (the model itself holds a
shadowing cache and an RNG registry, neither of which belongs in a
config fingerprint).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...dessim.rng import RngRegistry
from ..frames import PhyParameters
from ..propagation import UnitDiskPropagation
from .base import ReceptionModel
from .sinr import SinrCaptureReception
from .unitdisk import UnitDiskReception

__all__ = ["PhyConfig", "RECEPTION_MODELS"]

#: The registered reception-model tags, in presentation order.
RECEPTION_MODELS = ("unitdisk", "sinr")


@dataclass(frozen=True)
class PhyConfig:
    """Which reception model a simulation runs, and its knobs.

    The default is the paper's unit-disk model with no extra
    parameters — building it is bit-identical to not passing a
    ``PhyConfig`` at all.  The remaining fields configure
    :class:`~repro.phy.reception.sinr.SinrCaptureReception` and are
    ignored (but still fingerprinted) under ``model="unitdisk"``.

    Default budget, for orientation: 20 dBm into a 40 dB reference
    loss at 1 m with exponent 3.0 crosses the -94 dBm sensitivity near
    290 m — comparable to the paper's 300 m disk — and the -104 dBm
    noise floor leaves exactly the 10 dB capture threshold of SNR at
    the sensitivity edge.
    """

    model: str = "unitdisk"
    tx_power_dbm: float = 20.0
    pathloss_exponent: float = 3.0
    reference_distance_m: float = 1.0
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 6.0
    sensitivity_dbm: float = -94.0
    noise_dbm: float = -104.0
    capture_threshold_db: float = 10.0

    def __post_init__(self) -> None:
        if self.model not in RECEPTION_MODELS:
            raise ValueError(
                f"unknown reception model {self.model!r}; "
                f"expected one of {RECEPTION_MODELS}"
            )

    def build(
        self,
        propagation: UnitDiskPropagation,
        phy: PhyParameters,
        registry: RngRegistry,
    ) -> ReceptionModel:
        """Instantiate the configured model for one simulation run.

        Args:
            propagation: delay (and, for unit-disk, range) provider.
            phy: frame-level parameters; the unit-disk model reads its
                legacy ``capture_threshold`` from here.
            registry: the run's RNG registry; the SINR model draws its
                ``shadow-{src}-{dst}`` streams from it.
        """
        if self.model == "unitdisk":
            return UnitDiskReception(
                propagation, capture_threshold=phy.capture_threshold
            )
        return SinrCaptureReception(
            propagation,
            registry,
            tx_power_dbm=self.tx_power_dbm,
            pathloss_exponent=self.pathloss_exponent,
            reference_distance_m=self.reference_distance_m,
            reference_loss_db=self.reference_loss_db,
            shadowing_sigma_db=self.shadowing_sigma_db,
            sensitivity_dbm=self.sensitivity_dbm,
            noise_dbm=self.noise_dbm,
            capture_threshold_db=self.capture_threshold_db,
        )
