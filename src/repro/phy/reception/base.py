"""The reception-model contract: who hears what, and what survives.

A :class:`ReceptionModel` answers two questions the channel and radios
used to answer for themselves:

* **link budget** — for an ordered node pair, is a transmission from
  ``src`` audible at ``dst`` at all, and at what received power?  The
  channel's fan-out and the :class:`~repro.phy.linkcache.LinkCache`
  rows both resolve through this, so received power is computed in
  exactly one place per model.
* **reception outcome** — given the signals impinging on one radio
  over time, which frame (if any) is decoded?  Each radio owns a
  :class:`Receiver` created by the model; the radio keeps the
  counters, trace records and carrier-sense edges, the receiver keeps
  the per-signal bookkeeping and the collision/capture rules.

Two implementations exist: :class:`~repro.phy.reception.unitdisk.
UnitDiskReception` (the paper's binary-audibility model, bit-identical
to the pre-subsystem channel path and the default everywhere) and
:class:`~repro.phy.reception.sinr.SinrCaptureReception` (log-distance
path loss, lognormal shadowing, sensitivity and SINR capture).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..propagation import Position, UnitDiskPropagation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..channel import Transmission

__all__ = ["RxOutcome", "Receiver", "ReceptionModel"]


class RxOutcome(enum.Enum):
    """What a finished signal means to the MAC above the radio."""

    #: The frame was decoded start-to-finish: deliver it.
    DELIVERED = "delivered"
    #: We heard garbage start-to-finish: 802.11 reacts with EIFS.
    FAILED = "failed"
    #: Nothing to report upward (missed preamble, or we were deaf).
    SILENT = "silent"


class Receiver(ABC):
    """Per-radio reception state machine.

    The radio forwards every signal edge here and acts on the returned
    verdicts; ``records`` is the live signal table (its truthiness is
    the energy half of carrier sense, read on the hot path as a plain
    attribute).  ``captures``/``sinr_drops`` count model-specific
    events; the unit-disk model leaves them at zero.
    """

    __slots__ = ("records", "captures", "sinr_drops")

    def __init__(self) -> None:
        self.records: dict[int, object] = {}
        #: Frames delivered despite overlapping interference.
        self.captures = 0
        #: Receptions abandoned mid-air because SINR fell below threshold.
        self.sinr_drops = 0

    @abstractmethod
    def signal_start(self, tx: "Transmission", power: float, deaf: bool) -> bool:
        """A signal begins impinging; returns whether it is now being decoded.

        ``deaf`` is true when the radio is transmitting (the preamble
        is lost forever, though the energy still counts).
        """

    @abstractmethod
    def signal_end(self, tx: "Transmission", transmitting: bool) -> RxOutcome | None:
        """A signal stops impinging; ``None`` means it was never tracked."""

    @abstractmethod
    def abandon(self) -> None:
        """The radio went deaf mid-reception (it started transmitting)."""


class ReceptionModel(ABC):
    """Pluggable who-hears-what physics for one :class:`~repro.phy.Channel`.

    Models are stateless per query (shadowing draws are memoized, so
    repeated queries of the same pair are stable) and deterministic:
    the link budget of an ordered pair depends only on the pair's ids,
    their positions, and the model's own configuration/seed — never on
    query order.
    """

    #: Human-readable model tag (``"unitdisk"`` or ``"sinr"``).
    name: str

    def __init__(self, propagation: UnitDiskPropagation) -> None:
        #: Delay provider (and, for the unit-disk model, the range).
        self.propagation = propagation

    @abstractmethod
    def link_budget(
        self, src_id: int, dst_id: int, src: Position, dst: Position
    ) -> tuple[bool, float]:
        """``(audible, rx_power)`` for a transmission ``src -> dst``."""

    @abstractmethod
    def make_receiver(self) -> Receiver:
        """A fresh per-radio reception state machine."""
