"""Frame formats and air-time arithmetic (Table 1 of the paper).

The paper's simulations use IEEE 802.11 DSSS at a raw channel rate of
2 Mbps with RTS = 20 B, CTS = ACK = 14 B, data = 1460 B, and a
192 us synchronization (PLCP preamble + header) prepended to every
frame.  At 2 Mbps one bit lasts exactly 500 ns, so all air times are
exact integer nanoseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..dessim.units import microseconds

__all__ = ["FrameType", "Frame", "PhyParameters", "DSSS_PHY", "FRAME_SIZES"]


class FrameType(enum.Enum):
    """The four frame types of the RTS/CTS/DATA/ACK handshake."""

    RTS = "rts"
    CTS = "cts"
    DATA = "data"
    ACK = "ack"


#: Frame sizes in bytes, from Table 1.
FRAME_SIZES: dict[FrameType, int] = {
    FrameType.RTS: 20,
    FrameType.CTS: 14,
    FrameType.DATA: 1460,
    FrameType.ACK: 14,
}

_BROADCAST = -1


@dataclass(frozen=True)
class Frame:
    """An over-the-air frame.

    Attributes:
        ftype: frame type (RTS/CTS/DATA/ACK).
        src: sender node id.
        dst: destination node id.
        size_bytes: frame length on the wire.
        duration_ns: the 802.11 Duration field — how long the rest of
            the handshake occupies the medium after this frame ends.
            Overhearing nodes use it to set their NAV.
        handshake_id: tags all four frames of one handshake attempt, so
            statistics can attribute ACK timeouts to their RTS.
        created_ns: time the underlying payload packet entered the MAC
            queue (DATA frames only) — used for delay measurements.
        payload: opaque upper-layer metadata riding on DATA frames
            (e.g. a routing header); the PHY and MAC never look inside.
            Excluded from equality/hashing so frame identity stays a
            MAC-level notion.
    """

    ftype: FrameType
    src: int
    dst: int
    size_bytes: int
    duration_ns: int = 0
    handshake_id: int = field(default=-1)
    created_ns: int = field(default=-1)
    payload: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")
        if self.duration_ns < 0:
            raise ValueError(f"duration_ns must be >= 0, got {self.duration_ns}")
        if self.src == self.dst:
            raise ValueError(f"frame src and dst must differ, got {self.src}")

    @property
    def is_control(self) -> bool:
        """RTS/CTS/ACK are control frames; DATA is not."""
        return self.ftype is not FrameType.DATA


@dataclass(frozen=True)
class PhyParameters:
    """Physical-layer constants (defaults are the paper's Table 1).

    Attributes:
        bitrate_bps: raw channel rate (Table 1: 2 Mbps).
        sync_time_ns: PLCP sync preamble prepended to every frame.
        propagation_delay_ns: fixed propagation delay.
        capture_threshold: SNR capture behaviour.  ``None`` gives the
            paper's analytical-model physics — any overlap of audible
            signals corrupts everything ("no capture").  A linear power
            ratio (e.g. ``10.0`` for 10 dB) gives GloMoSim-style
            RADIO-ACCNOISE behaviour: an ongoing reception survives
            interference as long as its signal-to-interference ratio
            stays at or above the threshold.
    """

    bitrate_bps: int = 2_000_000
    sync_time_ns: int = microseconds(192)
    propagation_delay_ns: int = microseconds(1)
    capture_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError(f"bitrate must be positive, got {self.bitrate_bps}")
        if self.sync_time_ns < 0:
            raise ValueError(f"sync time must be >= 0, got {self.sync_time_ns}")
        if self.propagation_delay_ns < 0:
            raise ValueError(
                f"propagation delay must be >= 0, got {self.propagation_delay_ns}"
            )
        if 1_000_000_000 % self.bitrate_bps != 0:
            raise ValueError(
                "bitrate must divide 1e9 so bit times are integer ns, got "
                f"{self.bitrate_bps}"
            )
        if self.capture_threshold is not None and self.capture_threshold <= 0:
            raise ValueError(
                "capture_threshold must be positive or None, got "
                f"{self.capture_threshold}"
            )
        # Air-time memo: airtime_ns is called once per transmission but a
        # run only ever sees a handful of distinct frame sizes (RTS, CTS,
        # ACK, data).  Not a dataclass field, so eq/hash are unaffected.
        object.__setattr__(self, "_airtime_cache", {})

    @property
    def bit_time_ns(self) -> int:
        """Duration of one bit in nanoseconds (500 ns at 2 Mbps)."""
        return 1_000_000_000 // self.bitrate_bps

    def airtime_ns(self, size_bytes: int) -> int:
        """Time to transmit a frame: sync preamble plus payload bits.

        Memoized by frame size (a run sees ~4 distinct sizes).
        """
        cache: dict[int, int] = self._airtime_cache  # type: ignore[attr-defined]
        airtime = cache.get(size_bytes)
        if airtime is not None:
            return airtime
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        airtime = self.sync_time_ns + size_bytes * 8 * self.bit_time_ns
        cache[size_bytes] = airtime
        return airtime

    def frame_airtime_ns(self, ftype: FrameType) -> int:
        """Air time of a standard-sized frame of the given type."""
        return self.airtime_ns(FRAME_SIZES[ftype])


#: The paper's DSSS configuration with the analytical-model collision
#: rule (no capture).
DSSS_PHY = PhyParameters()

#: The same timing with GloMoSim-style 10 dB SNR capture — closer to
#: the radio model behind the paper's Section 4 simulations.
CAPTURE_PHY = PhyParameters(capture_threshold=10.0)
