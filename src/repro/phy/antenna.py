"""Antenna radiation patterns.

The paper's model is deliberately simple: a directional transmission
with beamwidth ``theta`` reaches exactly the nodes inside the circular
sector of half-angle ``theta/2`` around the boresight, with *complete
attenuation* outside and the same gain as an omni-directional
transmission inside (achievable via power control, per Section 2).
Reception is always omni-directional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "normalize_angle",
    "angular_distance",
    "OmniAntenna",
    "SectorAntenna",
    "AntennaPattern",
]


def normalize_angle(angle: float) -> float:
    """Wrap an angle to the interval ``(-pi, pi]``."""
    wrapped = math.fmod(angle, 2 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2 * math.pi
    return wrapped


def angular_distance(a: float, b: float) -> float:
    """Smallest absolute angle between two bearings, in ``[0, pi]``."""
    return abs(normalize_angle(a - b))


@dataclass(frozen=True)
class OmniAntenna:
    """Radiates equally in all directions."""

    @property
    def is_omni(self) -> bool:
        return True

    @property
    def beamwidth(self) -> float:
        return 2 * math.pi

    def covers(self, bearing: float) -> bool:
        """An omni pattern covers every bearing."""
        return True


@dataclass(frozen=True)
class SectorAntenna:
    """An idealized sector beam: full gain inside, nothing outside.

    Attributes:
        boresight: beam center direction in radians.
        beamwidth: full angular width ``theta`` of the beam in radians.
    """

    boresight: float
    beamwidth: float

    def __post_init__(self) -> None:
        if not 0.0 < self.beamwidth <= 2 * math.pi:
            raise ValueError(
                f"beamwidth must be in (0, 2*pi], got {self.beamwidth!r}"
            )
        if not math.isfinite(self.boresight):
            raise ValueError(f"boresight must be finite, got {self.boresight!r}")

    @property
    def is_omni(self) -> bool:
        return self.beamwidth >= 2 * math.pi

    def covers(self, bearing: float) -> bool:
        """Whether a target at the given bearing is inside the beam.

        The edge is inclusive: a node exactly on the sector boundary is
        covered, which keeps ``beamwidth = 2*pi`` exactly equivalent to
        an omni pattern.
        """
        return angular_distance(bearing, self.boresight) <= self.beamwidth / 2


#: Anything with ``covers(bearing) -> bool`` and ``is_omni`` works as a
#: pattern; the two concrete implementations above are what the
#: simulator uses.
AntennaPattern = OmniAntenna | SectorAntenna
