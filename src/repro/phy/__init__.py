"""Physical layer: frames, antennas, propagation, medium, transceiver.

Implements the paper's PHY assumptions exactly: unit-disk propagation
with a common range ``R``, idealized sector beams with complete
attenuation outside the beamwidth and omni-equal gain inside,
omni-directional reception, no capture, and deafness while
transmitting.  Timing follows Table 1 (2 Mbps DSSS, 192 us sync
preamble, 1 us propagation delay).
"""

from .antenna import (
    AntennaPattern,
    OmniAntenna,
    SectorAntenna,
    angular_distance,
    normalize_angle,
)
from .channel import Channel, ChannelStats, Transmission
from .frames import CAPTURE_PHY, DSSS_PHY, FRAME_SIZES, Frame, FrameType, PhyParameters
from .linkcache import DEFAULT_SECTORS, Link, LinkCache
from .propagation import Position, UnitDiskPropagation
from .radio import MacListener, Radio, RadioError, RadioState
from .reception import (
    RECEPTION_MODELS,
    PhyConfig,
    ReceptionModel,
    Receiver,
    RxOutcome,
    SinrCaptureReception,
    SinrReceiver,
    UnitDiskReception,
    UnitDiskReceiver,
)

__all__ = [
    "AntennaPattern",
    "OmniAntenna",
    "SectorAntenna",
    "angular_distance",
    "normalize_angle",
    "Channel",
    "ChannelStats",
    "Transmission",
    "Link",
    "LinkCache",
    "DEFAULT_SECTORS",
    "Frame",
    "FrameType",
    "FRAME_SIZES",
    "PhyParameters",
    "DSSS_PHY",
    "CAPTURE_PHY",
    "Position",
    "UnitDiskPropagation",
    "Radio",
    "RadioError",
    "RadioState",
    "MacListener",
    "ReceptionModel",
    "Receiver",
    "RxOutcome",
    "PhyConfig",
    "RECEPTION_MODELS",
    "UnitDiskReception",
    "UnitDiskReceiver",
    "SinrCaptureReception",
    "SinrReceiver",
]
