"""Link/geometry cache: the channel's sector-indexed fast path.

The naive channel answers "who hears this transmission?" with an O(N)
trig scan — one ``hypot`` + ``atan2`` per attached radio per
transmission — and the oracle neighbor protocol re-derives its neighbor
set from ground truth on every query.  Both costs are pure geometry
that only changes when a node *moves*, which is never (the paper's
static topologies) or rarely (random-waypoint steps every ~100 ms of
simulated time, versus thousands of transmissions in between).

This module caches that geometry:

* a **point cache** of :class:`Link` records per ordered node pair —
  ``(in_range, distance_m, bearing, delay_ns, rx_power)`` — so
  :meth:`~repro.mac.neighbors.NeighborTable.bearing_to` and
  ``distance_to`` become one dict lookup;
* a **row cache** per sender: its in-range neighbors in attach order,
  binned into angular sectors, so ``audible_nodes`` only inspects the
  sectors overlapping the transmit beam plus one boundary check per
  candidate instead of scanning every radio on the medium.

Invalidation is epoch-based and lazy.  Every node carries an epoch that
:meth:`note_moved` bumps (``Radio.position``'s setter calls it); a
cached pair record is valid only while both endpoints' epochs match,
so a move invalidates exactly that node's pair rows and nothing is
recomputed until the next query that needs it.  Rows additionally
carry a global move stamp: any move marks all rows stale (a mover can
enter or leave *any* sender's range), but a stale row's rebuild reuses
every pair record whose endpoints did not move, so the trig cost of a
rebuild is proportional to how many nodes actually moved.

Determinism: the cache is bit-identical to the naive scan by
construction — audibility and powers come from the same
:class:`~repro.phy.reception.base.ReceptionModel` link-budget calls on
the same :class:`~repro.phy.propagation.Position` values (shadowing
draws, where the model has them, are memoized per ordered pair, so
cache misses cannot re-roll them), and audible sets are emitted in the
same attach order the naive loop iterates in
(``tests/phy/test_linkcache.py`` pins the equivalence property).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, NamedTuple

from .antenna import AntennaPattern, normalize_angle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .radio import Radio
    from .reception.base import ReceptionModel

__all__ = ["Link", "LinkCache", "DEFAULT_SECTORS"]

#: Default number of angular bins per sender row.  16 keeps a paper-
#: sized beam (30-150 degrees) overlapping 2-8 bins while the bin
#: arrays stay tiny; the per-candidate ``covers`` check makes the
#: result independent of this value.
DEFAULT_SECTORS = 16

_TWO_PI = 2 * math.pi


class Link(NamedTuple):
    """Cached geometry of one ordered node pair ``(src -> dst)``."""

    in_range: bool
    distance_m: float
    bearing: float
    delay_ns: int
    rx_power: float


class _Row:
    """One sender's in-range neighbors, sector-indexed, at a move stamp."""

    __slots__ = ("stamp", "ids", "entries", "bins")

    def __init__(
        self,
        stamp: int,
        ids: list[int],
        entries: list[tuple[int, float, int, float]],
        bins: list[list[int]],
    ) -> None:
        self.stamp = stamp
        self.ids = ids
        self.entries = entries
        self.bins = bins


class LinkCache:
    """Per-pair geometry cache with sector-indexed audibility rows.

    The cache shares the channel's radio dict (so attach order — the
    naive scan's iteration order — is preserved) and observes position
    changes through :meth:`note_moved`.  All public query methods are
    bit-identical to the naive channel scan they replace.
    """

    def __init__(
        self,
        reception: "ReceptionModel",
        radios: dict[int, "Radio"],
        sectors: int = DEFAULT_SECTORS,
    ) -> None:
        if sectors < 1:
            raise ValueError(f"sectors must be >= 1, got {sectors}")
        self.reception = reception
        self.propagation = reception.propagation
        self.sectors = sectors
        self._width = _TWO_PI / sectors
        self._radios = radios
        self._epochs: dict[int, int] = {}
        self._move_seq = 0
        self._links: dict[tuple[int, int], tuple[int, int, Link]] = {}
        self._rows: dict[int, _Row] = {}

    # ------------------------------------------------------------------
    # Invalidation hooks (the channel and radios call these).
    # ------------------------------------------------------------------

    def note_attached(self, node_id: int) -> None:
        """A new radio joined the medium: all rows must see it."""
        self._epochs[node_id] = 0
        self._move_seq += 1

    def note_moved(self, node_id: int) -> None:
        """``node_id`` changed position: its pair records are stale."""
        self._epochs[node_id] = self._epochs.get(node_id, 0) + 1
        self._move_seq += 1

    # ------------------------------------------------------------------
    # Point queries.
    # ------------------------------------------------------------------

    def link(self, src_id: int, dst_id: int) -> Link:
        """The cached :class:`Link` from ``src_id`` to ``dst_id``."""
        epoch_src = self._epochs[src_id]
        epoch_dst = self._epochs[dst_id]
        key = (src_id, dst_id)
        cached = self._links.get(key)
        if (
            cached is not None
            and cached[0] == epoch_src
            and cached[1] == epoch_dst
        ):
            return cached[2]
        src = self._radios[src_id].position
        dst = self._radios[dst_id].position
        audible, rx_power = self.reception.link_budget(src_id, dst_id, src, dst)
        link = Link(
            in_range=audible,
            distance_m=src.distance_to(dst),
            bearing=src.bearing_to(dst),
            delay_ns=self.propagation.delay(src, dst),
            rx_power=rx_power,
        )
        self._links[key] = (epoch_src, epoch_dst, link)
        return link

    # ------------------------------------------------------------------
    # Row queries (the transmit fast path).
    # ------------------------------------------------------------------

    def _row(self, sender_id: int) -> _Row:
        row = self._rows.get(sender_id)
        if row is not None and row.stamp == self._move_seq:
            return row
        # Rebuild in attach order; unchanged pairs come straight from
        # the point cache, so only moved endpoints pay for trig.
        link = self.link
        sectors = self.sectors
        width = self._width
        ids: list[int] = []
        entries: list[tuple[int, float, int, float]] = []
        bins: list[list[int]] = [[] for _ in range(sectors)]
        for node_id in self._radios:
            if node_id == sender_id:
                continue
            record = link(sender_id, node_id)
            if not record.in_range:
                continue
            # Bearings live in (-pi, pi]; +pi lands on the last bin's
            # inclusive edge (the beam query scans a one-bin margin, so
            # the wrap seam is covered either way).
            sector = int((record.bearing + math.pi) / width)
            if sector >= sectors:
                sector = sectors - 1
            bins[sector].append(len(entries))
            ids.append(node_id)
            entries.append(
                (node_id, record.bearing, record.delay_ns, record.rx_power)
            )
        row = _Row(self._move_seq, ids, entries, bins)
        self._rows[sender_id] = row
        return row

    def neighbors_of(self, node_id: int) -> list[int]:
        """In-range node ids in attach order (the naive scan's order)."""
        return list(self._row(node_id).ids)

    def audible_entries(
        self, sender_id: int, pattern: AntennaPattern
    ) -> list[tuple[int, float, int, float]]:
        """``(node_id, bearing, delay_ns, rx_power)`` per audible radio.

        Attach order, exactly the naive scan's audible set.  The
        returned list is cache-owned for the omni case — treat it as
        read-only.
        """
        row = self._row(sender_id)
        entries = row.entries
        if pattern.is_omni:
            return entries
        covers = pattern.covers
        # Which sector bins can hold a covered bearing?  The beam arc
        # spans beamwidth radians; scan the bins it straddles plus a
        # one-bin float-safety margin on each side.  Candidates outside
        # the beam are rejected by the same `covers` check the naive
        # scan applies, so the margin costs a comparison, never
        # correctness.
        span = int(pattern.beamwidth / self._width) + 4
        if span >= self.sectors:
            return [entry for entry in entries if covers(entry[1])]
        low = normalize_angle(pattern.boresight - pattern.beamwidth / 2.0)
        start = int((low + math.pi) / self._width) - 1
        sectors = self.sectors
        bins = row.bins
        indices: list[int] = []
        for offset in range(span):
            indices.extend(bins[(start + offset) % sectors])
        indices.sort()  # bin contents are disjoint; sorting restores attach order
        return [entries[i] for i in indices if covers(entries[i][1])]

    # ------------------------------------------------------------------
    # Introspection (tests and sizing).
    # ------------------------------------------------------------------

    @property
    def move_seq(self) -> int:
        """Total attach/move bumps observed (row-staleness stamp)."""
        return self._move_seq

    def epoch_of(self, node_id: int) -> int:
        """Position epoch of one node (0 until its first move)."""
        return self._epochs[node_id]

    def cached_pairs(self) -> int:
        """Number of ordered pairs currently in the point cache."""
        return len(self._links)
