"""The transceiver: carrier sense, reception events, deafness.

Semantics implemented here, straight from the paper's assumptions:

* **Omni-directional reception** — a radio decodes whatever impinges on
  it, regardless of the direction it last transmitted in.
* **Deaf while transmitting** — a transmitting node "appears blind to
  other directions": it cannot carrier-sense nor begin decoding a frame
  while its own transmitter is on.  A signal that *starts* during our
  transmission can never be decoded (we missed its preamble), though its
  energy still counts for carrier sense once we stop transmitting.

*What a signal overlap means* — collision-corrupts-everything, SNR
capture, SINR tracking — is delegated to the per-radio
:class:`~repro.phy.reception.base.Receiver` created by the channel's
reception model; this class keeps the counters, the trace records and
the carrier-sense edges.

The radio reports four things upward to the MAC: decoded frames, failed
receptions (for EIFS), medium busy/idle transitions, and transmit
completion.
"""

from __future__ import annotations

import enum
from typing import Protocol

from ..dessim.engine import Simulator
from ..dessim.trace import Tracer
from .antenna import AntennaPattern, OmniAntenna
from .channel import Channel, Transmission
from .frames import Frame
from .propagation import Position
from .reception.base import RxOutcome

__all__ = ["Radio", "RadioState", "MacListener", "RadioError"]

# Hoisted enum members: on_signal_end runs once per signal per radio.
_DELIVERED = RxOutcome.DELIVERED
_FAILED = RxOutcome.FAILED


class RadioError(RuntimeError):
    """Raised on physically impossible requests (e.g. TX while TX)."""


class RadioState(enum.Enum):
    IDLE = "idle"
    TRANSMITTING = "transmitting"


class MacListener(Protocol):
    """What a MAC layer must implement to sit on top of a radio."""

    def on_frame_received(self, frame: Frame) -> None:
        """A frame addressed to anyone was decoded successfully."""

    def on_reception_failed(self) -> None:
        """A reception ended in garbage (collision) — EIFS trigger."""

    def on_medium_busy(self) -> None:
        """Carrier sense went from idle to busy."""

    def on_medium_idle(self) -> None:
        """Carrier sense went from busy to idle."""

    def on_transmit_complete(self, frame: Frame) -> None:
        """Our own transmission left the antenna completely."""


class Radio:
    """A single half-duplex transceiver bound to one position."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        position: Position,
        channel: Channel,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self._position = position
        self.channel = channel
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.state = RadioState.IDLE
        self._mac: MacListener | None = None
        self.receiver = channel.reception.make_receiver()
        # Bound-method aliases: the signal-edge path runs once per
        # (transmission, audible radio) pair and the attribute chain
        # through ``self.receiver`` costs there.
        self._receiver_start = self.receiver.signal_start
        self._receiver_end = self.receiver.signal_end
        # The live-signal table is mutated in place, never replaced, so
        # carrier sense can hold a direct reference.
        self._signals = self.receiver.records
        self._was_busy = False
        # Counters (cheap, always on).
        self.frames_sent = 0
        self.frames_received = 0
        self.receptions_corrupted = 0
        self.receptions_missed = 0
        channel.attach(self)

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def set_mac(self, mac: MacListener) -> None:
        """Attach the MAC layer that consumes this radio's events."""
        self._mac = mac

    @property
    def position(self) -> Position:
        """Where this radio currently sits on the plane."""
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        """Move the radio; the channel's link cache sees the epoch bump.

        Mobility models assign here (random-waypoint steps land on this
        setter unchanged); the channel lazily invalidates only this
        node's cached geometry rows.
        """
        self._position = value
        self.channel.note_moved(self.node_id)

    @property
    def mac(self) -> MacListener:
        if self._mac is None:
            raise RadioError(f"node {self.node_id}: no MAC attached")
        return self._mac

    # ------------------------------------------------------------------
    # MAC-facing API.
    # ------------------------------------------------------------------

    @property
    def transmitting(self) -> bool:
        return self.state is RadioState.TRANSMITTING

    @property
    def carrier_busy(self) -> bool:
        """Whether the medium appears busy to this node right now.

        Our own transmission counts as busy (the MAC must not start a
        second one), and any impinging signal counts as busy.
        """
        # `transmitting` inlined: this property sits on the carrier-
        # sense path of every signal edge.
        return self.state is RadioState.TRANSMITTING or bool(self._signals)

    def transmit(self, frame: Frame, pattern: AntennaPattern | None = None) -> None:
        """Radiate a frame with the given antenna pattern (omni default).

        Going into TX makes us deaf: any reception in progress is
        abandoned (it will not be delivered even if it ends cleanly
        after we finish, because we lost the middle of it).
        """
        if self.transmitting:
            raise RadioError(f"node {self.node_id}: transmit while transmitting")
        if pattern is None:
            pattern = OmniAntenna()

        # Abandon any in-progress decode; the energy stays tracked.
        self.receiver.abandon()

        self.state = RadioState.TRANSMITTING
        self.frames_sent += 1
        tx = self.channel.transmit(self, frame, pattern)
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx-start",
            ftype=frame.ftype.value, dst=frame.dst, tx_id=tx.tx_id,
        )
        # Fire-and-forget (TX-done is never cancelled), so the pooled
        # path applies: one recycled event per transmission.
        self.sim.schedule_anon(tx.airtime_ns, self._finish_transmit, frame)
        self._update_carrier()

    # ------------------------------------------------------------------
    # Channel-facing API.
    # ------------------------------------------------------------------

    def on_signal_start(self, tx: Transmission, power: float = 1.0) -> None:
        """A signal begins impinging on this radio.

        What the overlap (if any) does to receptions in progress is the
        reception model's rule set — collision-corrupts-everything for
        the paper's unit-disk model without a capture threshold, SNR or
        SINR capture otherwise.  Deafness is universal: a signal that
        starts during our own transmission lost its preamble forever.
        """
        deaf = self.state is RadioState.TRANSMITTING
        if deaf:
            self.receptions_missed += 1
        decoding = self._receiver_start(tx, power, deaf)
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "signal-start",
            src=tx.sender, ftype=tx.frame.ftype.value,
            clean=decoding,
        )
        self._update_carrier()

    def on_signal_end(self, tx: Transmission) -> None:
        """A signal stops impinging on this radio."""
        outcome = self._receiver_end(tx, self.state is RadioState.TRANSMITTING)
        if outcome is None:  # pragma: no cover - channel never double-ends
            return
        if outcome is _DELIVERED:
            self.frames_received += 1
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx-ok",
                src=tx.sender, ftype=tx.frame.ftype.value,
            )
            self.mac.on_frame_received(tx.frame)
        elif outcome is _FAILED:
            # We heard noise start-to-finish: 802.11 reacts with EIFS.
            self.receptions_corrupted += 1
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx-error",
                src=tx.sender, ftype=tx.frame.ftype.value,
            )
            self.mac.on_reception_failed()
        self._update_carrier()

    # ------------------------------------------------------------------

    def _finish_transmit(self, frame: Frame) -> None:
        self.state = RadioState.IDLE
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx-end",
            ftype=frame.ftype.value, dst=frame.dst,
        )
        self.mac.on_transmit_complete(frame)
        self._update_carrier()

    def _update_carrier(self) -> None:
        """Emit busy/idle edges to the MAC on state changes."""
        busy = self.carrier_busy
        if busy and not self._was_busy:
            self._was_busy = True
            self.mac.on_medium_busy()
        elif not busy and self._was_busy:
            self._was_busy = False
            self.mac.on_medium_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Radio(node={self.node_id}, state={self.state.value}, "
            f"incoming={len(self.receiver.records)})"
        )
