"""The transceiver: carrier sense, reception, collisions, deafness.

Semantics implemented here, straight from the paper's assumptions:

* **Omni-directional reception** — a radio decodes whatever impinges on
  it, regardless of the direction it last transmitted in.
* **No capture** — if two audible signals overlap in time at a receiver,
  both are corrupted, whatever their relative timing.
* **Deaf while transmitting** — a transmitting node "appears blind to
  other directions": it cannot carrier-sense nor begin decoding a frame
  while its own transmitter is on.  A signal that *starts* during our
  transmission can never be decoded (we missed its preamble), though its
  energy still counts for carrier sense once we stop transmitting.

The radio reports four things upward to the MAC: decoded frames, failed
receptions (for EIFS), medium busy/idle transitions, and transmit
completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol

from ..dessim.engine import Simulator
from ..dessim.trace import Tracer
from .antenna import AntennaPattern, OmniAntenna
from .channel import Channel, Transmission
from .frames import Frame
from .propagation import Position

__all__ = ["Radio", "RadioState", "MacListener", "RadioError"]


class RadioError(RuntimeError):
    """Raised on physically impossible requests (e.g. TX while TX)."""


class RadioState(enum.Enum):
    IDLE = "idle"
    TRANSMITTING = "transmitting"


class MacListener(Protocol):
    """What a MAC layer must implement to sit on top of a radio."""

    def on_frame_received(self, frame: Frame) -> None:
        """A frame addressed to anyone was decoded successfully."""

    def on_reception_failed(self) -> None:
        """A reception ended in garbage (collision) — EIFS trigger."""

    def on_medium_busy(self) -> None:
        """Carrier sense went from idle to busy."""

    def on_medium_idle(self) -> None:
        """Carrier sense went from busy to idle."""

    def on_transmit_complete(self, frame: Frame) -> None:
        """Our own transmission left the antenna completely."""


@dataclass
class _SignalRecord:
    """Book-keeping for one signal currently impinging on this radio."""

    tx: Transmission
    power: float = 1.0
    corrupted: bool = False
    missed: bool = False  # preamble lost (we were deaf when it started)


class Radio:
    """A single half-duplex transceiver bound to one position."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        position: Position,
        channel: Channel,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self._position = position
        self.channel = channel
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.state = RadioState.IDLE
        self._mac: MacListener | None = None
        self._incoming: dict[int, _SignalRecord] = {}
        self._rx_current: int | None = None
        self._was_busy = False
        # Counters (cheap, always on).
        self.frames_sent = 0
        self.frames_received = 0
        self.receptions_corrupted = 0
        self.receptions_missed = 0
        channel.attach(self)

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def set_mac(self, mac: MacListener) -> None:
        """Attach the MAC layer that consumes this radio's events."""
        self._mac = mac

    @property
    def position(self) -> Position:
        """Where this radio currently sits on the plane."""
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        """Move the radio; the channel's link cache sees the epoch bump.

        Mobility models assign here (random-waypoint steps land on this
        setter unchanged); the channel lazily invalidates only this
        node's cached geometry rows.
        """
        self._position = value
        self.channel.note_moved(self.node_id)

    @property
    def mac(self) -> MacListener:
        if self._mac is None:
            raise RadioError(f"node {self.node_id}: no MAC attached")
        return self._mac

    # ------------------------------------------------------------------
    # MAC-facing API.
    # ------------------------------------------------------------------

    @property
    def transmitting(self) -> bool:
        return self.state is RadioState.TRANSMITTING

    @property
    def carrier_busy(self) -> bool:
        """Whether the medium appears busy to this node right now.

        Our own transmission counts as busy (the MAC must not start a
        second one), and any impinging signal counts as busy.
        """
        # `transmitting` inlined: this property sits on the carrier-
        # sense path of every signal edge.
        return self.state is RadioState.TRANSMITTING or bool(self._incoming)

    def transmit(self, frame: Frame, pattern: AntennaPattern | None = None) -> None:
        """Radiate a frame with the given antenna pattern (omni default).

        Going into TX makes us deaf: any reception in progress is
        abandoned (it will not be delivered even if it ends cleanly
        after we finish, because we lost the middle of it).
        """
        if self.transmitting:
            raise RadioError(f"node {self.node_id}: transmit while transmitting")
        if pattern is None:
            pattern = OmniAntenna()

        # Abandon any in-progress decode; the energy stays tracked.
        for record in self._incoming.values():
            record.missed = True
        self._rx_current = None

        self.state = RadioState.TRANSMITTING
        self.frames_sent += 1
        tx = self.channel.transmit(self, frame, pattern)
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx-start",
            ftype=frame.ftype.value, dst=frame.dst, tx_id=tx.tx_id,
        )
        # Fire-and-forget (TX-done is never cancelled), so the pooled
        # path applies: one recycled event per transmission.
        self.sim.schedule_anon(tx.airtime_ns, self._finish_transmit, frame)
        self._update_carrier()

    # ------------------------------------------------------------------
    # Channel-facing API.
    # ------------------------------------------------------------------

    def on_signal_start(self, tx: Transmission, power: float = 1.0) -> None:
        """A signal begins impinging on this radio.

        With ``capture_threshold = None`` (the paper's analytical
        physics) any overlap of audible signals corrupts everything.
        With a threshold, an ongoing reception survives as long as its
        signal-to-interference ratio stays at or above it, and a new
        signal can be captured over background garbage if strong enough.
        """
        record = _SignalRecord(tx=tx, power=power)
        threshold = self.channel.phy.capture_threshold
        if self.transmitting:
            # Deaf: the preamble is lost forever.
            record.missed = True
            self.receptions_missed += 1
        elif self._incoming:
            if threshold is None:
                # No capture: everything in the air here is garbage.
                record.corrupted = True
                for other in self._incoming.values():
                    other.corrupted = True
                self._rx_current = None
            elif self._rx_current is not None:
                # SNR check for the ongoing reception; the newcomer's
                # preamble overlapped it either way.
                current = self._incoming[self._rx_current]
                interference = (
                    sum(s.power for s in self._incoming.values())
                    - current.power
                    + power
                )
                if current.power < threshold * interference:
                    current.corrupted = True
                    self._rx_current = None
                record.missed = True
            else:
                # Background garbage only: capture the newcomer if it
                # dominates the sum of everything else.
                interference = sum(s.power for s in self._incoming.values())
                if power >= threshold * interference:
                    self._rx_current = tx.tx_id
                else:
                    record.missed = True
        else:
            # Clean start on an idle medium: begin decoding.
            self._rx_current = tx.tx_id
        self._incoming[tx.tx_id] = record
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "signal-start",
            src=tx.sender, ftype=tx.frame.ftype.value,
            clean=self._rx_current == tx.tx_id,
        )
        self._update_carrier()

    def on_signal_end(self, tx: Transmission) -> None:
        """A signal stops impinging on this radio."""
        record = self._incoming.pop(tx.tx_id, None)
        if record is None:  # pragma: no cover - channel never double-ends
            return
        decoded = self._rx_current == tx.tx_id
        if decoded:
            self._rx_current = None

        if decoded and not record.corrupted and not record.missed:
            self.frames_received += 1
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx-ok",
                src=tx.sender, ftype=tx.frame.ftype.value,
            )
            self.mac.on_frame_received(tx.frame)
        elif record.corrupted and not record.missed and not self.transmitting:
            # We heard noise start-to-finish: 802.11 reacts with EIFS.
            self.receptions_corrupted += 1
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx-error",
                src=tx.sender, ftype=tx.frame.ftype.value,
            )
            self.mac.on_reception_failed()
        self._update_carrier()

    # ------------------------------------------------------------------

    def _finish_transmit(self, frame: Frame) -> None:
        self.state = RadioState.IDLE
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx-end",
            ftype=frame.ftype.value, dst=frame.dst,
        )
        self.mac.on_transmit_complete(frame)
        self._update_carrier()

    def _update_carrier(self) -> None:
        """Emit busy/idle edges to the MAC on state changes."""
        busy = self.carrier_busy
        if busy and not self._was_busy:
            self._was_busy = True
            self.mac.on_medium_busy()
        elif not busy and self._was_busy:
            self._was_busy = False
            self.mac.on_medium_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Radio(node={self.node_id}, state={self.state.value}, "
            f"incoming={len(self._incoming)})"
        )
