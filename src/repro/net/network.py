"""Network assembly: topology + PHY + MAC + traffic, ready to run.

This is the top of the simulation stack: given a
:class:`~repro.net.topology.Topology` and a scheme name, it wires a
:class:`~repro.dessim.Simulator`, one :class:`~repro.phy.Radio` and
:class:`~repro.mac.DcfMac` per node, and a saturated CBR source per
node that has at least one neighbor — exactly the paper's Section-4
setup — and produces a :class:`SimulationResult` with the measured
metrics of the innermost ``N`` nodes.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dessim.engine import make_simulator

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry
    from ..obs.profile import PhaseProfiler
from ..dessim.rng import RngRegistry
from ..dessim.trace import Tracer
from ..mac.config import DSSS_MAC, MacParameters
from ..mac.dcf import DcfMac
from ..mac.neighbors import NeighborTable
from ..mac.policy import POLICIES
from ..mac.stats import MacStats
from ..metrics.fairness import jain_index
from ..metrics.measures import (
    aggregate_collision_ratio,
    aggregate_throughput_bps,
    mean_delay_seconds,
    per_node_throughput_bps,
)
from ..phy.channel import Channel
from ..phy.frames import PhyParameters
from ..phy.propagation import UnitDiskPropagation
from ..phy.radio import Radio
from ..phy.reception import PhyConfig
from ..traffic.cbr import DEFAULT_PACKET_BYTES, CbrSource, SaturatedCbrSource
from .topology import Topology

__all__ = ["NetworkSimulation", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one simulation run."""

    scheme: str
    beamwidth: float
    duration_ns: int
    inner_ids: tuple[int, ...]
    stats: dict[int, MacStats] = field(repr=False)
    #: Frames delivered despite overlapping interference (SINR model;
    #: always 0 under the unit-disk reception model).
    frames_captured: int = 0
    #: Receptions dropped mid-air by a later interferer (SINR model).
    frames_sinr_dropped: int = 0

    @property
    def inner_throughput_bps(self) -> float:
        """Fig. 6 metric: aggregate goodput of the innermost N nodes."""
        return aggregate_throughput_bps(self.stats, self.duration_ns, self.inner_ids)

    @property
    def inner_mean_delay_s(self) -> float:
        """Fig. 7 metric: mean MAC service delay of inner-node packets."""
        return mean_delay_seconds(self.stats, self.inner_ids)

    @property
    def inner_collision_ratio(self) -> float:
        """Section-4 collision ratio pooled over the inner nodes."""
        return aggregate_collision_ratio(self.stats, self.inner_ids)

    @property
    def inner_fairness(self) -> float:
        """Jain index of the inner nodes' individual throughputs."""
        return jain_index(
            per_node_throughput_bps(self.stats, self.duration_ns, self.inner_ids)
        )

    @property
    def inner_packets_delivered(self) -> int:
        return sum(self.stats[n].packets_delivered for n in self.inner_ids)


class NetworkSimulation:
    """One runnable network instance."""

    def __init__(
        self,
        topology: Topology,
        scheme: str,
        beamwidth: float,
        seed: int,
        mac_params: MacParameters = DSSS_MAC,
        phy_params: PhyParameters | None = None,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        cbr_interval_ns: int | None = None,
        trace: bool = False,
        metrics: "MetricsRegistry | None" = None,
        link_cache: bool = True,
        scheduler: str | None = None,
        phy_config: PhyConfig | None = None,
    ) -> None:
        """Build the network.

        Args:
            seed: master seed for the run's :class:`RngRegistry`;
                required (no default) so replicate seeds are always
                plumbed explicitly from the experiment driver.
            phy_config: reception-model selection
                (:class:`~repro.phy.reception.PhyConfig`); ``None`` or
                the default config give the paper's unit-disk model,
                bit-identical to builds that predate the knob.  The
                SINR model draws its shadowing streams from this run's
                registry, so link budgets are seed-deterministic.
            cbr_interval_ns: ``None`` (default) gives the paper's
                always-backlogged saturated sources; a positive value
                gives fixed-interval CBR sources instead, for
                below-saturation load studies.
            metrics: optional telemetry registry
                (:class:`repro.obs.MetricsRegistry`); the kernel,
                channel, and MAC layers harvest their counters into it.
                Purely observational — attaching one cannot change
                simulation results.
            link_cache: ``True`` (default) resolves audibility and
                neighbor queries through the channel's
                :class:`~repro.phy.LinkCache` fast path; ``False``
                keeps the naive O(N) trig scan.  Results are
                bit-identical either way (the equivalence suite pins
                this) — the flag exists for that comparison.
            scheduler: event-scheduler choice (``"wheel"`` or
                ``"heap"``); ``None`` defers to the ``REPRO_SCHEDULER``
                environment variable and then the wheel default.  Both
                engines are bit-exact — the flag trades speed only.
        """
        if scheme not in POLICIES:
            raise KeyError(
                f"unknown scheme {scheme!r}; expected one of {sorted(POLICIES)}"
            )
        if not 0.0 < beamwidth <= 2 * math.pi:
            raise ValueError(f"beamwidth must be in (0, 2*pi], got {beamwidth!r}")
        self.topology = topology
        self.scheme = scheme
        self.beamwidth = beamwidth
        self.metrics = metrics
        self.sim = make_simulator(metrics=metrics, scheduler=scheduler)
        self.tracer = Tracer(enabled=trace, capacity=None)
        self.rng = RngRegistry(seed)
        phy = phy_params if phy_params is not None else PhyParameters()
        self.phy_config = phy_config if phy_config is not None else PhyConfig()
        reception = self.phy_config.build(
            UnitDiskPropagation(range_m=topology.config.range_m),
            phy,
            self.rng,
        )
        self.channel = Channel(
            self.sim,
            phy=phy,
            link_cache=link_cache,
            reception=reception,
        )
        policy = POLICIES[scheme]

        self.macs: dict[int, DcfMac] = {}
        self.sources: dict[int, SaturatedCbrSource | CbrSource] = {}
        for node_id, position in sorted(topology.positions.items()):
            radio = Radio(self.sim, node_id, position, self.channel, self.tracer)
            self.macs[node_id] = DcfMac(
                self.sim,
                radio,
                mac_params,
                NeighborTable(self.channel, node_id),
                policy,
                beamwidth=beamwidth,
                rng=self.rng.stream(f"mac-{node_id}"),
                tracer=self.tracer,
            )
        if cbr_interval_ns is not None and cbr_interval_ns <= 0:
            raise ValueError(
                f"cbr_interval_ns must be positive or None, got {cbr_interval_ns}"
            )
        # Traffic after all radios exist (neighbor sets are complete).
        for node_id, mac in self.macs.items():
            neighbors = self.channel.neighbors_of(node_id)
            if not neighbors:
                continue  # an isolated outer node generates nothing
            if cbr_interval_ns is None:
                self.sources[node_id] = SaturatedCbrSource(
                    self.sim,
                    mac,
                    destinations=sorted(neighbors),
                    rng=self.rng.stream(f"traffic-{node_id}"),
                    packet_bytes=packet_bytes,
                )
            else:
                self.sources[node_id] = CbrSource(
                    self.sim,
                    mac,
                    destinations=sorted(neighbors),
                    rng=self.rng.stream(f"traffic-{node_id}"),
                    interval_ns=cbr_interval_ns,
                    packet_bytes=packet_bytes,
                )

    def run(
        self,
        duration_ns: int,
        warmup_ns: int = 0,
        profiler: "PhaseProfiler | None" = None,
    ) -> SimulationResult:
        """Start all sources and run, returning post-warm-up metrics.

        Args:
            duration_ns: measured simulated duration.
            warmup_ns: optional transient to simulate *before* the
                measurement window; all MAC counters are zeroed when it
                ends, so cold-start effects (everyone contending at
                t = 0 with empty NAVs and minimal windows) don't bias
                short runs.
            profiler: optional :class:`repro.obs.PhaseProfiler`; the
                "warmup", "event loop", and "metrics reduction" phases
                accumulate host time into it.
        """
        if duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        if warmup_ns < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup_ns}")
        for source in self.sources.values():
            source.start()
        if warmup_ns:
            with profiler.phase("warmup") if profiler else nullcontext():
                self.sim.run(until=self.sim.now + warmup_ns)
                for mac in self.macs.values():
                    mac.stats.reset()
                for radio in self.channel.radios.values():
                    radio.receiver.captures = 0
                    radio.receiver.sinr_drops = 0
        with profiler.phase("event loop") if profiler else nullcontext():
            self.sim.run(until=self.sim.now + duration_ns)
        with profiler.phase("metrics reduction") if profiler else nullcontext():
            radios = self.channel.radios.values()
            result = SimulationResult(
                scheme=self.scheme,
                beamwidth=self.beamwidth,
                duration_ns=duration_ns,
                inner_ids=tuple(self.topology.inner_ids),
                stats={nid: mac.stats for nid, mac in self.macs.items()},
                frames_captured=sum(r.receiver.captures for r in radios),
                frames_sinr_dropped=sum(r.receiver.sinr_drops for r in radios),
            )
            if self.metrics is not None:
                self.metrics.gauge("net.nodes").set(len(self.macs))
                self.channel.stats.publish(self.metrics)
                for _node_id, mac in sorted(self.macs.items()):
                    mac.stats.publish(self.metrics)
        return result
