"""Topology and post-run invariant validation for network simulations.

A downstream user extending the MAC or PHY wants a cheap way to know
they broke something.  :func:`validate_simulation` re-checks the
cross-layer invariants the test suite relies on and returns a list of
human-readable violations (empty when everything holds).

:func:`connected_components` / :func:`is_connected` answer the
question multi-hop experiments must ask *before* running: can every
node reach every other at all?  A partitioned topology silently zeroes
end-to-end goodput for the stranded flows, which reads as a routing
failure when it is really a placement artifact — so the multi-hop
topology generator (:func:`~repro.net.topology
.generate_connected_ring_topology`) resamples or warns on partitions.
"""

from __future__ import annotations

import networkx as nx

from .network import NetworkSimulation, SimulationResult
from .topology import Topology

__all__ = ["connected_components", "is_connected", "validate_simulation"]


def connected_components(topology: Topology) -> list[list[int]]:
    """Connected components of the unit-disk graph, deterministically.

    Components are each sorted by node id and ordered by their smallest
    member, so the same topology always yields the same list — safe to
    hash into artifacts.
    """
    graph = topology.connectivity_graph()
    components = [sorted(component) for component in nx.connected_components(graph)]
    components.sort(key=lambda component: component[0])
    return components


def is_connected(topology: Topology) -> bool:
    """Whether every node can reach every other over unit-disk links."""
    return len(connected_components(topology)) <= 1


def validate_simulation(
    simulation: NetworkSimulation, result: SimulationResult
) -> list[str]:
    """Check conservation and counter identities after a run.

    Args:
        simulation: the network that produced ``result``.
        result: the returned metrics bundle.

    Returns:
        Violation descriptions; an empty list means all invariants hold.
    """
    violations: list[str] = []

    total_delivered = 0
    total_received = 0
    total_acks = 0
    total_data_sent = 0

    for node_id, stats in result.stats.items():
        prefix = f"node {node_id}:"
        if stats.data_sent > stats.rts_sent:
            violations.append(
                f"{prefix} data_sent ({stats.data_sent}) exceeds "
                f"rts_sent ({stats.rts_sent})"
            )
        if stats.packets_delivered > stats.data_sent:
            violations.append(
                f"{prefix} deliveries ({stats.packets_delivered}) exceed "
                f"data transmissions ({stats.data_sent})"
            )
        if stats.cts_timeouts + stats.ack_timeouts > stats.rts_sent:
            violations.append(
                f"{prefix} timeouts exceed RTS attempts"
            )
        if len(stats.delays_ns) != stats.packets_delivered:
            violations.append(
                f"{prefix} delay samples ({len(stats.delays_ns)}) != "
                f"deliveries ({stats.packets_delivered})"
            )
        if any(delay <= 0 for delay in stats.delays_ns):
            violations.append(f"{prefix} non-positive delay sample")
        if not 0.0 <= stats.collision_ratio <= 1.0:
            violations.append(
                f"{prefix} collision ratio {stats.collision_ratio} out of range"
            )
        total_delivered += stats.packets_delivered
        total_received += stats.data_received
        total_acks += stats.ack_sent
        total_data_sent += stats.data_sent

    if total_delivered > total_received:
        violations.append(
            f"network: deliveries ({total_delivered}) exceed receptions "
            f"({total_received})"
        )
    if total_received > total_data_sent:
        violations.append(
            f"network: receptions ({total_received}) exceed data "
            f"transmissions ({total_data_sent})"
        )
    # Every received DATA is ACKed — except responses still sitting in
    # their SIFS window when the run's end cut them off.
    in_flight = sum(
        1
        for mac in simulation.macs.values()
        if mac._response_timer.pending or mac.radio.transmitting
    )
    if not 0 <= total_received - total_acks <= in_flight + len(simulation.macs):
        violations.append(
            f"network: ACKs sent ({total_acks}) inconsistent with DATA "
            f"received ({total_received})"
        )

    channel = simulation.channel.stats
    if sum(channel.frames_by_type.values()) != channel.transmissions:
        violations.append("channel: per-type frame counts do not sum up")
    if sum(channel.airtime_by_type_ns.values()) != channel.airtime_ns:
        violations.append("channel: per-type air times do not sum up")

    # Saturated sources must still be backlogged.
    for node_id, source in simulation.sources.items():
        mac = simulation.macs[node_id]
        if hasattr(source, "packets_generated") and not hasattr(
            source, "interval_ns"
        ):
            if mac.queue_length < 1:
                violations.append(
                    f"node {node_id}: saturated source left the queue empty"
                )
    return violations
