"""Multi-hop network assembly: topology + PHY + MAC + routing + flows.

The multi-hop counterpart of :class:`~repro.net.network
.NetworkSimulation`: the same radio/MAC stack per node, but instead of
single-hop saturated CBR every node gets a
:class:`~repro.route.ForwardingAgent` (relay plane) and, where a far
destination exists, a :class:`~repro.traffic.FlowTrafficSource`
originating end-to-end packets through it.  This is the paper's
implicit next question made runnable: does directional spatial reuse
survive when traffic must be relayed?

Determinism contract: identical to the single-hop stack — the build
iterates nodes in sorted order, every RNG draw comes from a named
:class:`~repro.dessim.rng.RngRegistry` stream, and routing itself
draws nothing, so the same seed produces bit-identical results with
telemetry on or off.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from ..dessim.engine import make_simulator

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry
    from ..obs.profile import PhaseProfiler
from ..dessim.rng import RngRegistry
from ..dessim.trace import Tracer
from ..dessim.units import SECOND, milliseconds
from ..mac.config import DSSS_MAC, MacParameters
from ..mac.dcf import DcfMac
from ..mac.neighbors import NeighborTable
from ..mac.policy import POLICIES
from ..mac.stats import MacStats
from ..metrics.flows import FlowMetrics, FlowRecord
from ..phy.channel import Channel
from ..phy.frames import PhyParameters
from ..phy.propagation import UnitDiskPropagation
from ..phy.radio import Radio
from ..route.forwarding import ForwardingAgent
from ..route.router import GreedyGeographicRouter, Router, StaticShortestPathRouter
from ..route.stats import RouteStats
from ..traffic.cbr import DEFAULT_PACKET_BYTES
from ..traffic.flows import FlowTrafficSource
from .topology import Topology

__all__ = [
    "ROUTERS",
    "DEFAULT_FLOW_INTERVAL_NS",
    "MultihopNetworkSimulation",
    "MultihopSimulationResult",
]

#: Router names accepted by :class:`MultihopNetworkSimulation`.
ROUTERS = ("greedy", "shortest-path")

#: Default flow inter-arrival: ~0.3 Mbps offered per flow (1460 B /
#: 40 ms), comfortably below one hop's saturation so relays can breathe.
DEFAULT_FLOW_INTERVAL_NS = milliseconds(40)


@dataclass(frozen=True)
class MultihopSimulationResult:
    """Everything measured in one multi-hop run."""

    scheme: str
    beamwidth: float
    router: str
    duration_ns: int
    flows: tuple[FlowRecord, ...]
    #: Pooled over every delivered packet of every flow (exact, from
    #: the integer delay/hop samples — not re-derived from flow means).
    mean_delay_s: float
    mean_hop_count: float
    route_stats: dict[int, RouteStats] = field(repr=False)
    stats: dict[int, MacStats] = field(repr=False)

    @property
    def total_goodput_bps(self) -> float:
        """Aggregate end-to-end goodput across all flows."""
        return sum(flow.goodput_bps for flow in self.flows)

    @property
    def packets_originated(self) -> int:
        return sum(flow.packets_sent for flow in self.flows)

    @property
    def packets_delivered_e2e(self) -> int:
        return sum(flow.packets_delivered for flow in self.flows)

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of originated packets (0.0 when none sent)."""
        sent = self.packets_originated
        if sent == 0:
            return 0.0
        return self.packets_delivered_e2e / sent

    def route_totals(self) -> RouteStats:
        """Network-wide forwarding counters (sum over nodes)."""
        totals = RouteStats()
        for node_id in sorted(self.route_stats):
            totals.merge(self.route_stats[node_id])
        return totals


class MultihopNetworkSimulation:
    """One runnable multi-hop network instance."""

    def __init__(
        self,
        topology: Topology,
        scheme: str,
        beamwidth: float,
        seed: int,
        *,
        router: str = "greedy",
        mac_params: MacParameters = DSSS_MAC,
        phy_params: PhyParameters | None = None,
        packet_bytes: int = DEFAULT_PACKET_BYTES,
        flow_interval_ns: int = DEFAULT_FLOW_INTERVAL_NS,
        min_flow_hops: int = 2,
        relay_queue: int = 50,
        ttl: int = 32,
        trace: bool = False,
        metrics: "MetricsRegistry | None" = None,
        link_cache: bool = True,
        scheduler: str | None = None,
    ) -> None:
        """Build the network.

        Args:
            seed: master seed for the run's :class:`RngRegistry`;
                required so replicate seeds are always plumbed
                explicitly from the experiment driver.
            router: ``"greedy"`` (geographic forwarding over the
                location oracle) or ``"shortest-path"`` (precomputed
                hop-count Dijkstra over the ground-truth graph).
            flow_interval_ns: per-flow packet inter-arrival time.
            min_flow_hops: flow destinations are drawn among nodes at
                least this many hops away (2 = never a neighbor, so
                every flow exercises the relay plane).
            relay_queue: per-node forwarding-queue bound.
            ttl: per-packet hop budget (forwarding-loop guard).
            metrics: optional telemetry registry; purely observational.
            link_cache: channel fast-path flag, as on
                :class:`~repro.net.network.NetworkSimulation`.
            scheduler: event-scheduler choice, as on
                :class:`~repro.net.network.NetworkSimulation`.
        """
        if scheme not in POLICIES:
            raise KeyError(
                f"unknown scheme {scheme!r}; expected one of {sorted(POLICIES)}"
            )
        if not 0.0 < beamwidth <= 2 * math.pi:
            raise ValueError(f"beamwidth must be in (0, 2*pi], got {beamwidth!r}")
        if router not in ROUTERS:
            raise KeyError(f"unknown router {router!r}; expected one of {ROUTERS}")
        if flow_interval_ns <= 0:
            raise ValueError(
                f"flow_interval_ns must be positive, got {flow_interval_ns}"
            )
        if min_flow_hops < 1:
            raise ValueError(f"min_flow_hops must be >= 1, got {min_flow_hops}")
        self.topology = topology
        self.scheme = scheme
        self.beamwidth = beamwidth
        self.router_name = router
        self.metrics = metrics
        self.sim = make_simulator(metrics=metrics, scheduler=scheduler)
        self.tracer = Tracer(enabled=trace, capacity=None)
        self.rng = RngRegistry(seed)
        phy = phy_params if phy_params is not None else PhyParameters()
        self.channel = Channel(
            self.sim,
            phy=phy,
            propagation=UnitDiskPropagation(range_m=topology.config.range_m),
            link_cache=link_cache,
        )
        policy = POLICIES[scheme]

        self.macs: dict[int, DcfMac] = {}
        self.neighbor_tables: dict[int, NeighborTable] = {}
        for node_id, position in sorted(topology.positions.items()):
            radio = Radio(self.sim, node_id, position, self.channel, self.tracer)
            table = NeighborTable(self.channel, node_id)
            self.neighbor_tables[node_id] = table
            self.macs[node_id] = DcfMac(
                self.sim,
                radio,
                mac_params,
                table,
                policy,
                beamwidth=beamwidth,
                rng=self.rng.stream(f"mac-{node_id}"),
                tracer=self.tracer,
            )

        self.router: Router
        if router == "greedy":
            self.router = GreedyGeographicRouter(self.neighbor_tables)
        else:
            self.router = StaticShortestPathRouter.from_topology(topology)

        # Relay plane: every node forwards, whether or not it originates.
        self.agents: dict[int, ForwardingAgent] = {}
        self.flow_metrics = FlowMetrics()
        for node_id, mac in sorted(self.macs.items()):
            agent = ForwardingAgent(
                self.sim, mac, self.router, max_queue=relay_queue, ttl=ttl
            )
            agent.delivery_listeners.append(self._on_flow_delivery)
            self.agents[node_id] = agent

        # Flow sources: one per node with at least one far destination.
        graph = topology.connectivity_graph()
        self.sources: dict[int, FlowTrafficSource] = {}
        for node_id in sorted(self.agents):
            lengths = nx.single_source_shortest_path_length(graph, node_id)
            candidates = sorted(
                other for other, hops in lengths.items() if hops >= min_flow_hops
            )
            if not candidates:
                continue  # nothing far enough to relay to
            self.sources[node_id] = FlowTrafficSource(
                self.sim,
                self.agents[node_id],
                candidates,
                rng=self.rng.stream(f"flow-{node_id}"),
                interval_ns=flow_interval_ns,
                packet_bytes=packet_bytes,
            )
        self._sent_baseline: dict[int, int] = {}

    def _on_flow_delivery(self, payload, delay_ns: int, hops: int) -> None:
        self.flow_metrics.register(
            payload.flow_id, payload.src, payload.dst
        ).record_delivery(payload_bits=0, delay_ns=delay_ns, hops=hops)
        # Bits are credited here, not harvested later, so the counter
        # reflects exactly the packets recorded in this window.
        stats = self.flow_metrics[payload.flow_id]
        stats.bits_delivered += self._packet_bits

    def run(
        self,
        duration_ns: int,
        warmup_ns: int = 0,
        profiler: "PhaseProfiler | None" = None,
    ) -> MultihopSimulationResult:
        """Start all flows and run, returning post-warm-up metrics."""
        if duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {duration_ns}")
        if warmup_ns < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup_ns}")
        for node_id in sorted(self.sources):
            self.sources[node_id].start()
        if warmup_ns:
            with profiler.phase("warmup") if profiler else nullcontext():
                self.sim.run(until=self.sim.now + warmup_ns)
                for mac in self.macs.values():
                    mac.stats.reset()
                for agent in self.agents.values():
                    agent.stats.reset()
                self.flow_metrics.reset()
                self._sent_baseline = {
                    node_id: source.packets_generated
                    for node_id, source in self.sources.items()
                }
        with profiler.phase("event loop") if profiler else nullcontext():
            self.sim.run(until=self.sim.now + duration_ns)
        with profiler.phase("metrics reduction") if profiler else nullcontext():
            result = self._reduce(duration_ns)
            if self.metrics is not None:
                self._publish(self.metrics)
        return result

    def _reduce(self, duration_ns: int) -> MultihopSimulationResult:
        # Harvest per-flow sent counts from the sources (deliveries were
        # recorded live); every started flow appears even if it
        # delivered nothing.
        for node_id in sorted(self.sources):
            source = self.sources[node_id]
            assert source.flow_id is not None and source.dst is not None
            stats = self.flow_metrics.register(
                source.flow_id, node_id, source.dst
            )
            stats.packets_sent = source.packets_generated - self._sent_baseline.get(
                node_id, 0
            )
        delays: list[int] = []
        hops: list[int] = []
        for flow in self.flow_metrics.flows():
            delays.extend(flow.delays_ns)
            hops.extend(flow.hop_counts)
        return MultihopSimulationResult(
            scheme=self.scheme,
            beamwidth=self.beamwidth,
            router=self.router_name,
            duration_ns=duration_ns,
            flows=self.flow_metrics.records(duration_ns),
            mean_delay_s=(
                sum(delays) / len(delays) / SECOND if delays else 0.0
            ),
            mean_hop_count=(sum(hops) / len(hops) if hops else 0.0),
            route_stats={
                node_id: agent.stats for node_id, agent in self.agents.items()
            },
            stats={node_id: mac.stats for node_id, mac in self.macs.items()},
        )

    def _publish(self, metrics: "MetricsRegistry") -> None:
        metrics.gauge("net.nodes").set(len(self.macs))
        metrics.gauge("route.flows").set(len(self.sources))
        self.channel.stats.publish(metrics)
        for _node_id, mac in sorted(self.macs.items()):
            mac.stats.publish(metrics)
        for _node_id, agent in sorted(self.agents.items()):
            agent.stats.publish(metrics)

    @property
    def _packet_bits(self) -> int:
        # All flows share one packet size; any source knows it.
        source = next(iter(self.sources.values()))
        return source.packet_bytes * 8
