"""Network assembly: ring topologies and runnable simulations."""

from .mobility import RandomWaypointMobility
from .multihop import (
    ROUTERS,
    MultihopNetworkSimulation,
    MultihopSimulationResult,
)
from .network import NetworkSimulation, SimulationResult
from .topology import (
    Topology,
    TopologyConfig,
    TopologyError,
    generate_connected_ring_topology,
    generate_ring_topology,
)
from .validate import connected_components, is_connected, validate_simulation

__all__ = [
    "ROUTERS",
    "MultihopNetworkSimulation",
    "MultihopSimulationResult",
    "NetworkSimulation",
    "RandomWaypointMobility",
    "SimulationResult",
    "connected_components",
    "is_connected",
    "validate_simulation",
    "Topology",
    "TopologyConfig",
    "TopologyError",
    "generate_connected_ring_topology",
    "generate_ring_topology",
]
