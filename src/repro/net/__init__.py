"""Network assembly: ring topologies and runnable simulations."""

from .mobility import RandomWaypointMobility
from .network import NetworkSimulation, SimulationResult
from .topology import Topology, TopologyConfig, TopologyError, generate_ring_topology
from .validate import validate_simulation

__all__ = [
    "NetworkSimulation",
    "RandomWaypointMobility",
    "SimulationResult",
    "validate_simulation",
    "Topology",
    "TopologyConfig",
    "TopologyError",
    "generate_ring_topology",
]
