"""Node mobility (extension; the paper simulates static topologies).

The paper's directional schemes lean on "a neighbor protocol that can
actively maintain a list of neighbors as well as their locations", and
its Section 1 discussion of Ko et al. / Nasipuri et al. revolves around
what happens to antenna pointing when nodes move.  This module supplies
the missing ingredient for studying that: a random-waypoint mobility
process that moves radios on the plane in discrete steps, paired with
:class:`~repro.mac.neighbors.SnapshotNeighborTable` to model a neighbor
protocol that only refreshes periodically — so beams get aimed at where
the peer *was*.
"""

from __future__ import annotations

import math
import random

from ..dessim.engine import Simulator
from ..dessim.units import MILLISECOND
from ..phy.propagation import Position
from ..phy.radio import Radio

__all__ = ["RandomWaypointMobility"]


class RandomWaypointMobility:
    """Classic random-waypoint movement, discretised.

    The node picks a uniform waypoint in the bounding box, walks toward
    it at ``speed_mps`` (updating its radio position every
    ``step_ns``), pauses ``pause_ns``, then repeats.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        rng: random.Random,
        speed_mps: float,
        bounds: tuple[float, float, float, float],
        step_ns: int = 100 * MILLISECOND,
        pause_ns: int = 0,
    ) -> None:
        x_min, y_min, x_max, y_max = bounds
        if not (x_min < x_max and y_min < y_max):
            raise ValueError(f"degenerate bounds {bounds!r}")
        if speed_mps <= 0:
            raise ValueError(f"speed must be positive, got {speed_mps!r}")
        if step_ns <= 0:
            raise ValueError(f"step must be positive, got {step_ns!r}")
        if pause_ns < 0:
            raise ValueError(f"pause must be >= 0, got {pause_ns!r}")
        self.sim = sim
        self.radio = radio
        self.rng = rng
        self.speed_mps = speed_mps
        self.bounds = bounds
        self.step_ns = step_ns
        self.pause_ns = pause_ns
        self._waypoint: Position | None = None
        self.distance_travelled = 0.0

    def start(self) -> None:
        """Begin moving (call once)."""
        self._pick_waypoint()
        self.sim.schedule(self.step_ns, self._step)

    def _pick_waypoint(self) -> None:
        x_min, y_min, x_max, y_max = self.bounds
        self._waypoint = Position(
            x_min + self.rng.random() * (x_max - x_min),
            y_min + self.rng.random() * (y_max - y_min),
        )

    def _step(self) -> None:
        assert self._waypoint is not None
        here = self.radio.position
        remaining = here.distance_to(self._waypoint)
        stride = self.speed_mps * self.step_ns / 1e9
        if remaining <= stride:
            # Arrive, pause, choose a new waypoint.
            self.radio.position = self._waypoint
            self.distance_travelled += remaining
            self._pick_waypoint()
            self.sim.schedule(self.step_ns + self.pause_ns, self._step)
            return
        bearing = here.bearing_to(self._waypoint)
        self.radio.position = Position(
            here.x + stride * math.cos(bearing),
            here.y + stride * math.sin(bearing),
        )
        self.distance_travelled += stride
        self.sim.schedule(self.step_ns, self._step)
