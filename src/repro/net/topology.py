"""Concentric-ring random topologies (Section 4 of the paper).

The paper approximates its 2-D Poisson model with a bounded uniform
layout: given range ``R`` and mean neighbor count ``N``,

* ``N`` nodes go uniformly into the disk of radius ``R``,
* ``3N`` nodes into the ring ``[R, 2R]`` (so the 2R-disk holds 4N),
* ``5N`` nodes into the ring ``[2R, 3R]`` (so the 3R-disk holds 9N),

and only the innermost ``N`` nodes are measured, which the paper shows
makes boundary effects negligible at 3R.  "Extreme" placements are
rejected:

* every inner node must have between ``2`` and ``2N - 2`` neighbors,
* every middle-ring node must have between ``1`` and ``2N - 1``.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass, field

import networkx as nx

from ..phy.propagation import Position

__all__ = [
    "TopologyConfig",
    "Topology",
    "TopologyError",
    "generate_ring_topology",
    "generate_connected_ring_topology",
]


class TopologyError(RuntimeError):
    """Raised when no admissible placement is found within the budget."""


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the ring generator.

    Attributes:
        n: mean neighbor count ``N`` (the paper uses 3, 5 and 8).
        range_m: transmission range ``R`` in meters.
        rings: how many ``R``-wide rings to fill (the paper uses 3,
            giving ``(2k-1)N`` nodes in ring ``k`` and ``9N`` total).
        max_attempts: placement retries before giving up.
    """

    n: int = 3
    range_m: float = 300.0
    rings: int = 3
    max_attempts: int = 1000

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"n must be >= 2 (degree bounds need it), got {self.n}")
        if self.range_m <= 0:
            raise ValueError(f"range_m must be positive, got {self.range_m}")
        if self.rings < 1:
            raise ValueError(f"rings must be >= 1, got {self.rings}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def ring_population(self, ring: int) -> int:
        """Nodes in ring ``ring`` (0-based): ``(2k+1) * N``."""
        if not 0 <= ring < self.rings:
            raise ValueError(f"ring must be in [0, {self.rings}), got {ring}")
        return (2 * ring + 1) * self.n

    @property
    def total_nodes(self) -> int:
        """``rings^2 * N`` nodes overall."""
        return self.rings * self.rings * self.n


@dataclass(frozen=True)
class Topology:
    """An admissible node placement."""

    config: TopologyConfig
    positions: dict[int, Position]
    ring_of: dict[int, int] = field(repr=False)

    @property
    def inner_ids(self) -> list[int]:
        """The measured nodes: those inside the innermost disk."""
        return [nid for nid, ring in self.ring_of.items() if ring == 0]

    def ids_in_ring(self, ring: int) -> list[int]:
        return [nid for nid, r in self.ring_of.items() if r == ring]

    def connectivity_graph(self) -> nx.Graph:
        """The unit-disk graph induced by the transmission range."""
        graph = nx.Graph()
        graph.add_nodes_from(self.positions)
        ids = sorted(self.positions)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if (
                    self.positions[a].distance_to(self.positions[b])
                    <= self.config.range_m
                ):
                    graph.add_edge(a, b)
        return graph

    def neighbor_count(self, node_id: int) -> int:
        pos = self.positions[node_id]
        return sum(
            1
            for other, other_pos in self.positions.items()
            if other != node_id
            and pos.distance_to(other_pos) <= self.config.range_m
        )


def _uniform_in_annulus(
    rng: random.Random, r_inner: float, r_outer: float
) -> tuple[float, float]:
    """Area-uniform point in the annulus ``[r_inner, r_outer]``."""
    radius = math.sqrt(
        rng.random() * (r_outer**2 - r_inner**2) + r_inner**2
    )
    angle = rng.random() * 2 * math.pi
    return radius * math.cos(angle), radius * math.sin(angle)


def _admissible(topology: Topology) -> bool:
    """The paper's two degree conditions."""
    cfg = topology.config
    for node_id in topology.ids_in_ring(0):
        degree = topology.neighbor_count(node_id)
        if not 2 <= degree <= 2 * cfg.n - 2:
            return False
    if cfg.rings >= 2:
        for node_id in topology.ids_in_ring(1):
            degree = topology.neighbor_count(node_id)
            if not 1 <= degree <= 2 * cfg.n - 1:
                return False
    return True


def generate_ring_topology(
    config: TopologyConfig, rng: random.Random
) -> Topology:
    """Sample placements until one satisfies the degree conditions.

    Raises:
        TopologyError: when ``config.max_attempts`` placements all fail
            the admissibility conditions.
    """
    for _attempt in range(config.max_attempts):
        positions: dict[int, Position] = {}
        ring_of: dict[int, int] = {}
        node_id = 0
        for ring in range(config.rings):
            r_inner = ring * config.range_m
            r_outer = (ring + 1) * config.range_m
            for _ in range(config.ring_population(ring)):
                x, y = _uniform_in_annulus(rng, r_inner, r_outer)
                positions[node_id] = Position(x, y)
                ring_of[node_id] = ring
                node_id += 1
        topology = Topology(config=config, positions=positions, ring_of=ring_of)
        if _admissible(topology):
            return topology
    raise TopologyError(
        f"no admissible topology in {config.max_attempts} attempts for "
        f"N={config.n}, R={config.range_m}"
    )


def generate_connected_ring_topology(
    config: TopologyConfig,
    rng: random.Random,
    *,
    max_resamples: int = 25,
) -> Topology:
    """An admissible placement whose unit-disk graph is connected.

    Multi-hop experiments need every flow destination reachable; the
    paper's degree conditions admit placements whose outer ring still
    fragments.  This wrapper resamples (continuing the same ``rng``
    stream, so the result is a pure function of the stream state) until
    the connectivity graph has a single component.  If ``max_resamples``
    admissible-but-partitioned placements go by, it *warns* and returns
    the last one rather than failing — stranded flows then show up as
    dead-end drops in the routing metrics, not as a crashed campaign.

    Raises:
        TopologyError: propagated from :func:`generate_ring_topology`
            when no admissible placement exists at all.
    """
    if max_resamples < 1:
        raise ValueError(f"max_resamples must be >= 1, got {max_resamples}")
    for _resample in range(max_resamples):
        topology = generate_ring_topology(config, rng)
        if nx.is_connected(topology.connectivity_graph()):
            return topology
    warnings.warn(
        f"no connected topology in {max_resamples} resamples for "
        f"N={config.n}, rings={config.rings}; proceeding with a partitioned "
        "placement (unreachable flows will count as dead-end drops)",
        stacklevel=2,
    )
    return topology
