"""Rule base class and the plugin registry.

A rule is a class with an ``id`` (``SLxxx``), a short ``name``, a
``description``, per-rule ``default_options``, and a ``check`` method
yielding :class:`~repro.lint.findings.Finding` objects for one parsed
module.  Decorating it with :func:`register` adds it to the global
registry; external packages can contribute rules by listing importable
modules under ``[tool.simlint] plugins`` — importing the module runs
its ``@register`` decorators.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from ..context import ModuleContext
from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fixes import Fix
    from ..project import ProjectContext

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "load_plugins",
]


class Rule:
    """Base class for simlint rules."""

    id: str = ""
    name: str = ""
    description: str = ""
    #: Per-rule options, overridable from ``[tool.simlint.rules.<id>]``.
    default_options: dict[str, object] = {}

    def __init__(self, options: dict[str, object] | None = None) -> None:
        merged = dict(self.default_options)
        if options:
            merged.update(options)
        self.options = merged

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleContext,
        line: int,
        col: int,
        message: str,
        fix: "Fix | None" = None,
    ) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule_id=self.id,
            message=message,
            source_line=module.source_line(line),
            fix=fix,
        )


class ProjectRule(Rule):
    """A rule that runs once over the whole program, not per module.

    The engine's second phase hands every ``ProjectRule`` the
    :class:`~repro.lint.project.ProjectContext` built from all parsed
    files; findings are routed through each target module's suppression
    index exactly like module-phase findings.  ``check`` (the
    per-module hook) is intentionally inert.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    existing = _REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """The registry (built-ins are imported on first use)."""
    _load_builtin_rules()
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Type[Rule]:
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def load_plugins(modules: Iterable[str]) -> None:
    """Import external rule modules named in the config."""
    for module_name in modules:
        importlib.import_module(module_name)


_BUILTINS_LOADED = False


def _load_builtin_rules() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for module_name in (
        "rng_discipline",
        "wall_clock",
        "unit_discipline",
        "iteration_order",
        "seed_plumbing",
        "event_time",
        "process_boundary",
        "fs_order",
        "telemetry_purity",
        "fingerprint",
    ):
        importlib.import_module(f"{__name__}.{module_name}")
