"""SL010: every config field must enter the campaign fingerprint.

The campaign store refuses to resume a directory whose manifest
fingerprint doesn't match the current config — but that guard only
works if :func:`config_fingerprint` actually *sees* every field.  A
field added to ``SimStudyConfig`` (or a subclass) that never reaches
the fingerprint lets two different configurations silently share one
campaign directory, mixing results that were computed under different
parameters.

The rule resolves the configured root dataclasses through the project
graph (inherited fields included, base-first like ``asdict``), then
checks the configured fingerprint functions for coverage:

* ``dataclasses.asdict(cfg)`` covers everything — minus fields removed
  afterwards via ``record.pop("field")`` / ``del record["field"]``;
* otherwise, only fields read as ``cfg.field`` count.

Uncovered fields are reported at their declaration line.  Projects with
no fingerprint function get no findings — there is nothing to keep
complete.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import DataclassInfo, FunctionInfo, ProjectContext
from . import ProjectRule, register


def _first_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return params[0] if params else None


def _uses_asdict(node: ast.AST, param: str) -> bool:
    for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "asdict" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Name) and arg.id == param:
                return True
    return False


def _removed_keys(node: ast.AST) -> set[str]:
    """String keys dropped via ``.pop("k")`` or ``del d["k"]``."""
    removed: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "pop"
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            removed.add(sub.args[0].value)
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    removed.add(target.slice.value)
    return removed


def _attribute_reads(node: ast.AST, param: str) -> set[str]:
    return {
        sub.attr
        for sub in ast.walk(node)
        if isinstance(sub, ast.Attribute)
        and isinstance(sub.value, ast.Name)
        and sub.value.id == param
    }


def _coverage(printers: list[FunctionInfo]) -> tuple[set[str], set[str] | None]:
    """(fields read explicitly, fields excluded from full coverage).

    The second element is ``None`` when no printer uses ``asdict`` —
    only the explicit-read set counts then.  Otherwise it holds the
    keys popped by *every* asdict-based printer; everything else is
    covered wholesale.
    """
    explicit: set[str] = set()
    popped_everywhere: set[str] | None = None
    saw_asdict = False
    for info in printers:
        param = _first_param(info.node)
        if param is None:
            continue
        explicit |= _attribute_reads(info.node, param)
        if _uses_asdict(info.node, param):
            saw_asdict = True
            removed = _removed_keys(info.node)
            popped_everywhere = (
                removed if popped_everywhere is None else popped_everywhere & removed
            )
    if not saw_asdict:
        return explicit, None
    return explicit, popped_everywhere or set()


@register
class FingerprintRule(ProjectRule):
    id = "SL010"
    name = "fingerprint-coverage"
    description = (
        "config dataclass field never enters the campaign fingerprint; "
        "resumed directories could silently mix configurations"
    )
    default_options: dict[str, object] = {
        "allow": [],
        #: Basenames of the config dataclasses whose fields must all be
        #: fingerprinted.
        "roots": ["SimStudyConfig", "MultihopStudyConfig", "SinrStudyConfig"],
        #: Basenames of functions that compute the fingerprint.
        "fingerprints": ["config_fingerprint"],
    }

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        fingerprint_names = set(self.options["fingerprints"])  # type: ignore[arg-type]
        printers = [
            info
            for qual, info in project.functions.items()
            if qual.rsplit(".", 1)[-1] in fingerprint_names
        ]
        if not printers:
            return
        explicit, popped = _coverage(printers)
        root_names = set(self.options["roots"])  # type: ignore[arg-type]
        seen: set[tuple[str, str]] = set()
        for qual in sorted(project.dataclasses):
            info = project.dataclasses[qual]
            if qual.rsplit(".", 1)[-1] not in root_names:
                continue
            if project.modules[info.module].in_any(
                self.options["allow"]  # type: ignore[arg-type]
            ):
                continue
            for name in project.dataclass_fields(qual):
                if self._is_covered(name, explicit, popped):
                    continue
                declarer = self._declaring_class(project, qual, name)
                if declarer is None or (declarer.qualname, name) in seen:
                    continue
                seen.add((declarer.qualname, name))
                line, col = self._field_site(declarer, name)
                yield self.finding(
                    project.modules[declarer.module],
                    line,
                    col,
                    f"field {name!r} of {qual.rsplit('.', 1)[-1]} never "
                    "enters the campaign fingerprint "
                    f"({', '.join(sorted(fingerprint_names))}); two configs "
                    "differing only here would share a campaign directory",
                )

    @staticmethod
    def _is_covered(
        name: str, explicit: set[str], popped: set[str] | None
    ) -> bool:
        if name in explicit:
            return True
        # asdict covers every field except those popped back out.
        return popped is not None and name not in popped

    def _declaring_class(
        self, project: ProjectContext, qual: str, name: str
    ) -> DataclassInfo | None:
        """The dataclass (root or base) whose body declares ``name``."""
        info = project.dataclasses.get(qual)
        if info is None:
            return None
        for base in info.bases:
            found = self._declaring_class(project, base, name)
            if found is not None:
                return found
        return info if name in info.fields else None

    @staticmethod
    def _field_site(info: DataclassInfo, name: str) -> tuple[int, int]:
        for item in info.node.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.target.id == name
            ):
                return item.lineno, item.col_offset
        return info.node.lineno, info.node.col_offset
