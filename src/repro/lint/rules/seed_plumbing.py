"""SL005: constructors never default their ``rng``/``seed`` parameters.

A defaulted seed (``seed: int = 0``) or a silent fallback stream
(``rng=None`` then ``random.Random(0)`` inside) lets two "independent"
components share draws without anyone asking for it — the bug class
behind non-replicating simulation studies.  Callers must say where the
randomness comes from, every time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register


def _seedlike(param: str, names: tuple[str, ...], suffixes: tuple[str, ...]) -> bool:
    return param in names or any(param.endswith(s) for s in suffixes)


@register
class SeedPlumbingRule(Rule):
    id = "SL005"
    name = "seed-plumbing"
    description = (
        "public constructor gives its rng/seed parameter a default; "
        "require the caller to pass the stream or seed explicitly"
    )
    default_options: dict[str, object] = {
        "parameter-names": ["rng", "seed", "master_seed"],
        "parameter-suffixes": ["_rng", "_seed"],
        "allow": [],
    }

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
            return
        names = tuple(self.options["parameter-names"])  # type: ignore[arg-type]
        suffixes = tuple(self.options["parameter-suffixes"])  # type: ignore[arg-type]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue  # private classes may do what they like
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"
                ):
                    yield from self._check_init(module, node.name, item, names, suffixes)

    def _check_init(
        self,
        module: ModuleContext,
        class_name: str,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        names: tuple[str, ...],
        suffixes: tuple[str, ...],
    ) -> Iterator[Finding]:
        args = init.args
        # Positional-or-keyword (and positional-only) defaults align to
        # the *tail* of the combined parameter list.
        positional = list(args.posonlyargs) + list(args.args)
        defaulted = positional[len(positional) - len(args.defaults):]
        pairs = list(zip(defaulted, args.defaults))
        pairs += [
            (arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if _seedlike(arg.arg, names, suffixes):
                yield self.finding(
                    module,
                    default.lineno,
                    default.col_offset,
                    f"{class_name}.__init__ defaults {arg.arg!r}; "
                    "seed/rng parameters must be passed explicitly",
                )
