"""SL001: all randomness flows through the stream registry.

Constructing ``random.Random(...)`` or calling module-level
``random.*`` functions anywhere except the sanctioned entry points
breaks the central guarantee of :mod:`repro.dessim.rng`: that every
stochastic component draws from a named stream derived from one master
seed, so adding a consumer never perturbs existing draws.  Components
must *accept* an injected stream, not mint their own.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register


@register
class RngDisciplineRule(Rule):
    id = "SL001"
    name = "rng-discipline"
    description = (
        "ad-hoc random.Random(...) construction or module-level random.* "
        "call outside the sanctioned modules; inject a registry stream"
    )
    default_options: dict[str, object] = {
        # Where minting streams is legitimate: the registry itself and
        # top-level entry points that own the master seed.
        "allow": ["dessim/rng.py", "cli.py", "experiments/"],
        # Dotted prefixes whose calls count as ad-hoc randomness.
        "modules": ["random", "numpy.random"],
    }

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
            return
        prefixes = tuple(self.options["modules"])  # type: ignore[arg-type]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolved_call_name(node)
            if name is None:
                continue
            if any(
                name == prefix or name.startswith(f"{prefix}.")
                for prefix in prefixes
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"ad-hoc RNG use {name!r}; accept an injected "
                    "stream from repro.dessim.rng.RngRegistry instead",
                )
