"""SL004: no iteration over bare sets in event-path code.

``set`` iteration order depends on insertion history and element
hashes; for ``object`` elements the hash is the id, which varies run to
run.  Inside the engine and the MAC/PHY event paths that turns into
run-dependent event ordering — the exact nondeterminism the sequence-
numbered event heap was built to prevent.  Iterate ``sorted(...)``
views instead (dicts are insertion-ordered and therefore fine).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

_SET_RETURNING_METHODS = frozenset(
    {
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
    }
)


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression syntactically produces a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_RETURNING_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # a | b etc. on two set expressions.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _FunctionSetNames(ast.NodeVisitor):
    """Collect local names assigned a set-producing expression."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_set_expr(node.value):
            if isinstance(node.target, ast.Name):
                self.names.add(node.target.id)
        self.generic_visit(node)


@register
class IterationOrderRule(Rule):
    id = "SL004"
    name = "iteration-order"
    description = (
        "iteration over a bare set in event-path code; order is "
        "hash/run-dependent — iterate sorted(...) instead"
    )
    default_options: dict[str, object] = {
        # Packages whose code runs inside the event loop.
        "paths": [
            "dessim/",
            "mac/",
            "phy/",
            "net/",
            "traffic/",
            "slotsim/",
        ],
    }

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_any(self.options["paths"]):  # type: ignore[arg-type]
            return
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            collector = _FunctionSetNames()
            collector.visit(scope)
            yield from self._check_scope(module, scope, collector.names)

    def _check_scope(
        self,
        module: ModuleContext,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        set_names: set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._hazardous(it, set_names):
                    yield self.finding(
                        module,
                        it.lineno,
                        it.col_offset,
                        "iterating a bare set (order is run-dependent "
                        "for object elements); use sorted(...)",
                    )

    @staticmethod
    def _hazardous(it: ast.expr, set_names: set[str]) -> bool:
        if _is_set_expr(it):
            return True
        return isinstance(it, ast.Name) and it.id in set_names
