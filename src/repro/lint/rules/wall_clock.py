"""SL002: the host clock never enters the simulation.

Simulated time is :attr:`Simulator.now` — an integer nanosecond counter.
Reading the wall clock (or any other host entropy source) anywhere in
the simulator makes results differ between runs and machines, which is
exactly the failure mode the reproduction exists to rule out.

Both *calls* of banned callables and ``from``-imports that bind one
locally (``from time import perf_counter``) are flagged: an imported
clock is a clock about to be read.  The single sanctioned wall-clock
module is ``repro.obs.profile`` — host-side profiling is *about* the
host clock — whitelisted via ``[tool.simlint.rules.SL002]`` in
pyproject.toml, not here, so the exemption is visible configuration.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

#: Dotted callables that read the host clock or entropy pool.  Matched
#: against the alias-resolved callee name by suffix, so both
#: ``datetime.datetime.now`` and ``datetime.now`` (after a ``from``
#: import) are caught.
NONDETERMINISTIC_CALLS: tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "os.getrandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
    "random.SystemRandom",
)


@register
class WallClockRule(Rule):
    id = "SL002"
    name = "wall-clock-ban"
    description = (
        "host-clock or entropy read (time.time, datetime.now, uuid4, "
        "os.urandom, ...); use Simulator.now and injected RNG streams"
    )
    default_options: dict[str, object] = {
        "banned": list(NONDETERMINISTIC_CALLS),
        # No allowlist by default: nothing under the simulator tree may
        # read the host clock.
        "allow": [],
    }

    @staticmethod
    def _matches(name: str, banned: tuple[str, ...]) -> bool:
        return any(
            name == target or name.endswith(f".{target}") for target in banned
        )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
            return
        banned = tuple(self.options["banned"])  # type: ignore[arg-type]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = module.resolved_call_name(node)
                if name is not None and self._matches(name, banned):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"nondeterministic call {name!r}; simulation "
                        "code must use Simulator.now / injected streams",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay project-internal
                for item in node.names:
                    imported = f"{node.module}.{item.name}"
                    if self._matches(imported, banned):
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"nondeterministic import {imported!r}; only "
                            "the sanctioned profiling module "
                            "(repro.obs.profile) may read the host clock",
                        )
