"""SL009: telemetry observes the simulation; it never steers it.

The ``obs`` contract (pinned by ``tests/obs/test_determinism_guard``)
is that running with telemetry on or off produces byte-identical
results: instruments are write-only and gating on telemetry enablement
may select *observation*, never simulation behaviour.  Two violation
shapes are mechanically detectable in event-path code:

1. An instrument mutator's return value feeding anything
   (``x = counter.inc()``, ``if gauge.set(v):``) — instruments return
   ``None`` by design, so consuming the result means simulation state
   was built on a telemetry call.
2. A telemetry-gated branch (``if metrics.enabled:``,
   ``if self.metrics is not None:``) that mutates simulation state or
   alters control flow (attribute assignment, ``return``/``raise``/
   ``break``/``continue``) — that code runs only when someone is
   watching.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext, dotted_name
from ..findings import Finding
from . import Rule, register

#: Instrument mutators (write-only by contract).
_MUTATORS = frozenset({"inc", "observe"})
#: ``.set`` is only a mutator when the receiver looks like a gauge.
_SET_RECEIVER_HINTS = ("gauge",)
#: Test-expression words that mark a telemetry gate.
_GATE_WORDS = ("metrics", "telemetry", "instrument")


def _is_mutator_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _MUTATORS:
        return True
    if func.attr == "set":
        recv = dotted_name(func.value)
        return recv is not None and any(
            hint in recv.lower() for hint in _SET_RECEIVER_HINTS
        )
    return False


def _is_telemetry_gate(test: ast.expr) -> bool:
    """Whether an ``if`` test switches on telemetry enablement."""
    for node in ast.walk(test):
        name = None
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node)
        if name is None:
            continue
        lowered = name.lower()
        if any(word in lowered for word in _GATE_WORDS):
            return True
    return False


@register
class TelemetryPurityRule(Rule):
    id = "SL009"
    name = "telemetry-purity"
    description = (
        "telemetry feeding back into the simulation: instrument return "
        "value consumed, or sim state/control flow gated on telemetry "
        "enablement (on/off runs must be identical)"
    )
    default_options: dict[str, object] = {
        # Packages whose code runs inside the event loop; orchestration
        # layers (experiments, cli) legitimately branch on telemetry to
        # pick worker variants with identical results.
        "paths": [
            "dessim/",
            "mac/",
            "phy/",
            "net/",
            "route/",
            "traffic/",
            "slotsim/",
        ],
    }

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_any(self.options["paths"]):  # type: ignore[arg-type]
            return
        bare = {
            node.value
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)
        }
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _is_mutator_call(node)
                and node not in bare
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "instrument mutator result is consumed; instruments "
                    "return None and must stay write-only",
                )
            elif isinstance(node, ast.If) and _is_telemetry_gate(node.test):
                yield from self._check_gated_body(module, node.body)

    def _check_gated_body(
        self, module: ModuleContext, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        for stmt in body:
            offenders: list[tuple[ast.stmt, str]] = []
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                offenders.append(
                    (stmt, "control flow diverges when telemetry is enabled")
                )
            elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                if any(isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets):
                    offenders.append(
                        (stmt, "state mutated only when telemetry is enabled")
                    )
            elif isinstance(stmt, ast.If):
                yield from self._check_gated_body(module, stmt.body + stmt.orelse)
            for offender, why in offenders:
                yield self.finding(
                    module,
                    offender.lineno,
                    offender.col_offset,
                    f"telemetry-gated block: {why}; telemetry on/off runs "
                    "must be byte-identical",
                )
