"""SL006: float values must not flow into integer-ns time parameters.

SL003 guards the scheduler APIs themselves (``schedule(1.5, ...)``);
this rule follows the event clock *through the call graph*.  A
parameter is an **int-ns sink** when its name ends in ``_ns``, when the
function passes it straight into ``schedule()``/``schedule_at()``/a
timer ``start()``, or — transitively — when it is forwarded into
another function's sink parameter.  Any call site (or parameter
default) feeding a float-valued expression into a sink is flagged, in
whatever module it lives.

Fix: an integral float literal (``1e6``, ``2.0``) feeding a sink is
mechanically rewritten to the exact int literal; non-integral floats
need a human to choose the rounding, so they stay findings.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..findings import Finding
from ..fixes import Fix, fix_for_node
from ..project import FunctionInfo, ProjectContext
from . import ProjectRule, register
from .unit_discipline import _float_taint

#: Attribute names that take an int-ns time as their first argument.
_SCHEDULE_ATTRS = frozenset({"schedule", "schedule_at"})


def _param_positions(info: FunctionInfo) -> dict[str, int]:
    """Parameter name -> call-site position (kw-only params get -1).

    Positions skip ``self``/``cls`` on methods so they line up with
    call-site argument lists.
    """
    node = info.node
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    if info.owner is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    positions = {name: pos for pos, name in enumerate(params)}
    positions.update({a.arg: -1 for a in node.args.kwonlyargs})
    return positions


def _direct_sinks(info: FunctionInfo) -> dict[str, int]:
    """Parameters that are int-ns sinks by name or by direct use."""
    positions = _param_positions(info)
    sinks = {
        name: pos for name, pos in positions.items() if name.endswith("_ns")
    }
    for call in (n for n in ast.walk(info.node) if isinstance(n, ast.Call)):
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        fed: list[ast.expr] = []
        if attr in _SCHEDULE_ATTRS and call.args:
            fed.append(call.args[0])
        if (
            attr == "start"
            and call.args
            and isinstance(func, ast.Attribute)
            and _is_timerish(func)
        ):
            fed.append(call.args[0])
        for kw in call.keywords:
            if kw.arg and kw.arg.endswith("_ns"):
                fed.append(kw.value)
        for expr in fed:
            if isinstance(expr, ast.Name) and expr.id in positions:
                sinks[expr.id] = positions[expr.id]
    return sinks


def _is_timerish(func: ast.Attribute) -> bool:
    recv = func.value
    name = None
    if isinstance(recv, ast.Name):
        name = recv.id
    elif isinstance(recv, ast.Attribute):
        name = recv.attr
    return name is not None and "timer" in name.lower()


def _match_call_args(
    call: ast.Call, target_sinks: dict[str, int]
) -> list[tuple[str, ast.expr]]:
    """(sink-param name, argument expr) pairs a call feeds into sinks.

    ``*_ns=`` keyword arguments are skipped — SL003 already flags float
    values there, and double findings help nobody.
    """
    pairs: list[tuple[str, ast.expr]] = []
    positions = {pos: name for name, pos in target_sinks.items() if pos >= 0}
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break  # positions unknowable past *args
        if index in positions:
            pairs.append((positions[index], arg))
    for kw in call.keywords:
        if kw.arg and kw.arg in target_sinks and not kw.arg.endswith("_ns"):
            pairs.append((kw.arg, kw.value))
    return pairs


def _calls_with_owner(
    project: ProjectContext, mod_name: str
) -> Iterable[tuple[ast.Call, str | None]]:
    """Every call in a module with its enclosing class name (methods).

    Top-level functions and methods are walked via the function index
    (owner known); module- and class-level statements outside any def
    are walked separately with descent into defs cut off.
    """
    module = project.modules[mod_name]
    for info in project.functions.values():
        if info.module != mod_name:
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                yield node, info.owner

    def outside(node: ast.AST) -> Iterable[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from outside(child)

    for call in outside(module.tree):
        yield call, None


@register
class EventTimeRule(ProjectRule):
    id = "SL006"
    name = "event-time-flow"
    description = (
        "float expression flowing into an int-nanosecond time parameter "
        "through the call graph; convert at the boundary"
    )
    default_options: dict[str, object] = {"allow": []}

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        sinks = self._propagate_sinks(project)
        for mod_name in sorted(project.modules):
            module = project.modules[mod_name]
            if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
                continue
            yield from self._check_defaults(project, mod_name)
            for call, owner in _calls_with_owner(project, mod_name):
                yield from self._check_call(project, mod_name, call, owner, sinks)

    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_callable(
        project: ProjectContext, mod_name: str, call: ast.Call, owner: str | None
    ) -> str | None:
        """Call target as a *function* qualname (constructors -> __init__)."""
        target = project.resolve_call(mod_name, call, owner=owner)
        if target is None:
            return None
        if isinstance(project.symbols.get(target), ast.ClassDef):
            target = f"{target}.__init__"
        return target if target in project.functions else None

    def _propagate_sinks(self, project: ProjectContext) -> dict[str, dict[str, int]]:
        """Fixpoint: qualname -> sink params, following arg forwarding."""
        sinks = {
            qual: direct
            for qual, info in project.functions.items()
            if (direct := _direct_sinks(info))
        }
        changed = True
        while changed:
            changed = False
            for qual, info in project.functions.items():
                own_params = _param_positions(info)
                own_sinks = sinks.get(qual, {})
                for call in (
                    n for n in ast.walk(info.node) if isinstance(n, ast.Call)
                ):
                    target = self._resolve_callable(
                        project, info.module, call, info.owner
                    )
                    if target is None or target == qual:
                        continue
                    target_sinks = sinks.get(target)
                    if not target_sinks:
                        continue
                    for _param, expr in _match_call_args(call, target_sinks):
                        if (
                            isinstance(expr, ast.Name)
                            and expr.id in own_params
                            and expr.id not in own_sinks
                        ):
                            own_sinks = dict(own_sinks)
                            own_sinks[expr.id] = own_params[expr.id]
                            sinks[qual] = own_sinks
                            changed = True
        return sinks

    def _check_call(
        self,
        project: ProjectContext,
        mod_name: str,
        call: ast.Call,
        owner: str | None,
        sinks: dict[str, dict[str, int]],
    ) -> Iterator[Finding]:
        target = self._resolve_callable(project, mod_name, call, owner)
        if target is None:
            return
        target_sinks = sinks.get(target)
        if not target_sinks:
            return
        module = project.modules[mod_name]
        for param, expr in _match_call_args(call, target_sinks):
            taint = _float_taint(expr)
            if taint is None:
                continue
            yield self.finding(
                module,
                expr.lineno,
                expr.col_offset,
                f"float-valued argument for int-ns parameter {param!r} of "
                f"{target}(); convert via repro.dessim.units or round()",
                fix=_integral_literal_fix(taint),
            )

    def _check_defaults(
        self, project: ProjectContext, mod_name: str
    ) -> Iterator[Finding]:
        module = project.modules[mod_name]
        for qual, info in project.functions.items():
            if info.module != mod_name:
                continue
            node = info.node
            positional = list(node.args.posonlyargs) + list(node.args.args)
            defaulted = positional[len(positional) - len(node.args.defaults):]
            pairs = list(zip(defaulted, node.args.defaults))
            pairs += [
                (arg, default)
                for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
                if default is not None
            ]
            for arg, default in pairs:
                if not arg.arg.endswith("_ns"):
                    continue
                taint = _float_taint(default)
                if taint is None:
                    continue
                yield self.finding(
                    module,
                    default.lineno,
                    default.col_offset,
                    f"float default on int-ns parameter {arg.arg!r} of "
                    f"{qual}(); use an exact int (the units helpers "
                    "evaluate to ints)",
                    fix=_integral_literal_fix(taint),
                )


def _integral_literal_fix(taint: ast.expr) -> Fix | None:
    """Exact int-literal rewrite for an integral float constant."""
    if not isinstance(taint, ast.Constant) or not isinstance(taint.value, float):
        return None
    if not taint.value.is_integer():
        return None
    return fix_for_node(taint, str(int(taint.value)))
