"""SL003: floats must be converted before reaching the ns-clock APIs.

The scheduler, timers, and every ``*_ns`` field are integer
nanoseconds by contract (:mod:`repro.dessim.units`); the engine even
rejects non-int event times at runtime.  This rule moves that check to
lint time: a float literal (``1e-6``-style arithmetic included) or a
true-division result flowing into ``schedule``/``schedule_at``/timer
``start``/``run(until=...)`` arguments or any ``*_ns=`` keyword must be
wrapped in one of the sanctioned converters (``units.microseconds``,
``milliseconds``, ``seconds``, ``round``, ``int``, ``//``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

#: Call names (final attribute segment) that convert to integer ns.
SANCTIONED_CONVERTERS: frozenset[str] = frozenset(
    {"microseconds", "milliseconds", "seconds", "round", "int", "len", "max", "min"}
)


def _float_taint(node: ast.expr) -> ast.expr | None:
    """First sub-expression producing a float, or None.

    Descends the expression but stops at calls to sanctioned converters
    (their result is integer ns by contract) and at ``//`` floor
    divisions.  Any float constant or ``/`` true division taints.
    """
    if isinstance(node, ast.Constant):
        return node if isinstance(node.value, float) else None
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in SANCTIONED_CONVERTERS:
            return None
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            taint = _float_taint(arg)
            if taint is not None:
                return taint
        return None
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return node
        if isinstance(node.op, ast.FloorDiv):
            return None
        return _float_taint(node.left) or _float_taint(node.right)
    if isinstance(node, ast.UnaryOp):
        return _float_taint(node.operand)
    if isinstance(node, (ast.IfExp,)):
        return _float_taint(node.body) or _float_taint(node.orelse)
    return None


@register
class UnitDisciplineRule(Rule):
    id = "SL003"
    name = "unit-discipline"
    description = (
        "float value flowing into an integer-nanosecond scheduler/timer "
        "API; convert via repro.dessim.units helpers or round()"
    )
    default_options: dict[str, object] = {"allow": []}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(module, node)

    def _check_call(
        self, module: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else None

        candidates: list[tuple[ast.expr, str]] = []
        if attr in ("schedule", "schedule_at") and node.args:
            candidates.append((node.args[0], f"{attr}() time argument"))
        elif attr == "start" and node.args and self._is_timer(func):
            candidates.append((node.args[0], "Timer.start() delay"))
        elif attr == "run":
            for kw in node.keywords:
                if kw.arg == "until":
                    candidates.append((kw.value, "run(until=...)"))
        for kw in node.keywords:
            if kw.arg and kw.arg.endswith("_ns"):
                candidates.append((kw.value, f"{kw.arg}= keyword"))

        for expr, where in candidates:
            taint = _float_taint(expr)
            if taint is not None:
                yield self.finding(
                    module,
                    expr.lineno,
                    expr.col_offset,
                    f"float-valued expression in {where} (integer "
                    "nanoseconds expected); wrap it in "
                    "units.microseconds()/milliseconds()/seconds() or round()",
                )

    @staticmethod
    def _is_timer(func: ast.Attribute) -> bool:
        """``<recv>.start(...)`` where the receiver looks like a timer."""
        recv = func.value
        name = None
        if isinstance(recv, ast.Name):
            name = recv.id
        elif isinstance(recv, ast.Attribute):
            name = recv.attr
        return name is not None and "timer" in name.lower()
