"""SL008: directory-scan results are iterated in platform order.

``Path.glob``/``iterdir``, ``os.listdir``/``scandir``/``walk``, and
``glob.glob`` all yield entries in whatever order the filesystem
returns them — which differs between ext4, APFS, and tmpfs, and even
between runs after a resume.  Iterating such a scan unsorted makes
artifact processing order (and therefore anything accumulated in float
arithmetic, progress output, or first-match logic) platform-dependent;
the campaign store's ``cell-*.json`` scan is the motivating case.
Wrap the producer in ``sorted(...)``.

Fix: direct iteration over a sortable producer (``glob``/``rglob``/
``iterdir``/``os.listdir``) is mechanically wrapped in ``sorted(...)``.
``scandir``/``walk`` entries don't define ``<``, so those stay
findings for a human.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..fixes import fix_for_node
from . import Rule, register

#: Method names (final attribute) that scan a directory unsorted and
#: whose results sort cheaply (str or PurePath elements).
_SORTABLE_METHODS = frozenset({"glob", "rglob", "iterdir"})
#: Resolved dotted callables that scan unsorted.
_SORTABLE_CALLS = frozenset({"os.listdir", "glob.glob", "glob.iglob"})
_UNSORTABLE_METHODS = frozenset({"scandir"})
_UNSORTABLE_CALLS = frozenset({"os.scandir", "os.walk"})

#: Wrappers that preserve (lack of) order.
_TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "iter", "reversed"})


def _producer(node: ast.expr, module: ModuleContext) -> tuple[ast.Call, bool] | None:
    """(producer call, sortable) when ``node`` is an unsorted scan."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _TRANSPARENT_WRAPPERS and node.args:
        return _producer(node.args[0], module)
    name = module.resolved_call_name(node)
    if name is not None:
        if name in _SORTABLE_CALLS:
            return node, True
        if name in _UNSORTABLE_CALLS:
            return node, False
    if isinstance(func, ast.Attribute):
        if func.attr in _SORTABLE_METHODS:
            return node, True
        if func.attr in _UNSORTABLE_METHODS:
            return node, False
    return None


class _ScanNames(ast.NodeVisitor):
    """Local names assigned an unsorted directory scan."""

    def __init__(self, module: ModuleContext) -> None:
        self.module = module
        self.names: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _producer(node.value, self.module) is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _producer(node.value, self.module) is not None:
            if isinstance(node.target, ast.Name):
                self.names.add(node.target.id)
        self.generic_visit(node)


@register
class FsOrderRule(Rule):
    id = "SL008"
    name = "fs-scan-order"
    description = (
        "directory scan (glob/iterdir/listdir/scandir/walk) iterated "
        "without sorted(); result order is platform-dependent"
    )
    default_options: dict[str, object] = {"allow": []}

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
            return
        # Direct iteration over a producer, anywhere in the module.
        for node in ast.walk(module.tree):
            for it in _iteration_exprs(node):
                found = _producer(it, module)
                if found is None:
                    continue
                call, sortable = found
                fix = None
                if sortable:
                    segment = ast.get_source_segment(module.source, it)
                    if segment is not None:
                        fix = fix_for_node(it, f"sorted({segment})")
                yield self.finding(
                    module,
                    it.lineno,
                    it.col_offset,
                    "iterating a directory scan in platform order; wrap "
                    "it in sorted(...)"
                    + ("" if sortable else " (after keying entries)"),
                    fix=fix,
                )
        # Names assigned a scan, iterated later in the same function.
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            collector = _ScanNames(module)
            collector.visit(scope)
            if not collector.names:
                continue
            for node in ast.walk(scope):
                for it in _iteration_exprs(node):
                    if isinstance(it, ast.Name) and it.id in collector.names:
                        yield self.finding(
                            module,
                            it.lineno,
                            it.col_offset,
                            f"iterating {it.id!r}, an unsorted directory "
                            "scan; wrap the scan in sorted(...)",
                        )


def _iteration_exprs(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return [gen.iter for gen in node.generators]
    return []
