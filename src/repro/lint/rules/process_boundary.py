"""SL007: RNG streams must not cross the process-pool boundary.

The campaign layer's determinism rests on every worker re-deriving its
streams from ``(config, n, replicate)`` inside the worker process.
Shipping a live stream object across the ``ProcessPoolExecutor``
boundary — as a ``submit()``/``map()`` argument, captured module
state in the submitted function, or a field of a pickled work unit
like ``CellSpec`` — pickles the generator *state*, so the parent's
position in the stream at submit time silently becomes part of the
result.  Serial and parallel runs then diverge, which is exactly the
contract ``tests/experiments`` pins.

The rule tracks names bound to registry objects (``RngRegistry(...)``,
``.spawn(...)``, ``.stream(...)``, ``random.Random(...)``) per scope,
and flags them appearing in pool submissions or in the constructors of
configured picklable work-unit types.  The submitted callable is also
resolved through the project graph: a function reaching a module-level
RNG global is flagged at the submission site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import dotted_name
from ..findings import Finding
from ..project import ProjectContext
from . import ProjectRule, register

#: Final attribute names whose call mints a stream object.
_STREAM_METHODS = frozenset({"spawn", "stream"})
#: Resolved callables (by suffix) that construct RNG state.
_RNG_CONSTRUCTORS = ("random.Random", "RngRegistry", "default_rng")
#: Executor methods that ship arguments to worker processes.
_SUBMIT_METHODS = frozenset({"submit", "map"})


def _is_rng_expr(node: ast.expr, module, rng_names: set[str]) -> bool:
    """Whether an expression is (or contains) live RNG state."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in rng_names:
            return True
        if isinstance(sub, ast.Call):
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _STREAM_METHODS
            ):
                return True
            name = module.resolved_call_name(sub)
            if name is not None and any(
                name == c or name.endswith(f".{c}") for c in _RNG_CONSTRUCTORS
            ):
                return True
    return False


def _rng_names_in(scope: ast.AST, module) -> set[str]:
    """Names assigned RNG state within one scope (no descent into defs)."""
    names: set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not scope:
                    continue
            if isinstance(child, ast.Assign) and _is_rng_expr(
                child.value, module, names
            ):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                if _is_rng_expr(child.value, module, names) and isinstance(
                    child.target, ast.Name
                ):
                    names.add(child.target.id)
            visit(child)

    visit(scope)
    return names


def _executor_names(scope: ast.AST, module) -> set[str]:
    """Names bound to a ProcessPoolExecutor in this scope."""
    names: set[str] = set()

    def is_executor(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = module.resolved_call_name(node)
        return name is not None and name.endswith("ProcessPoolExecutor")

    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and is_executor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if is_executor(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
    return names


@register
class ProcessBoundaryRule(ProjectRule):
    id = "SL007"
    name = "rng-process-boundary"
    description = (
        "RNG registry/stream state shipped across the process-pool "
        "boundary or pickled into a work unit; re-derive streams in "
        "the worker from (config, indices) instead"
    )
    default_options: dict[str, object] = {
        "allow": [],
        #: Basenames of picklable work-unit types whose constructor
        #: arguments cross the process boundary.
        "pickled-types": ["CellSpec"],
    }

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        rng_globals = {
            mod_name: _rng_names_in(module.tree, module)
            for mod_name, module in project.modules.items()
        }
        for mod_name in sorted(project.modules):
            module = project.modules[mod_name]
            if module.in_any(self.options["allow"]):  # type: ignore[arg-type]
                continue
            yield from self._check_module(project, mod_name, rng_globals)

    def _check_module(
        self,
        project: ProjectContext,
        mod_name: str,
        rng_globals: dict[str, set[str]],
    ) -> Iterator[Finding]:
        module = project.modules[mod_name]
        pickled = tuple(self.options["pickled-types"])  # type: ignore[arg-type]
        scopes: list[ast.AST] = [module.tree] + [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            rng_names = set(rng_globals.get(mod_name, ()))
            if scope is not module.tree:
                rng_names |= _rng_names_in(scope, module)
            executors = _executor_names(scope, module)
            for node in _calls_in_scope(scope):
                yield from self._check_call(
                    project, mod_name, node, rng_names, executors,
                    rng_globals, pickled,
                )

    def _check_call(
        self,
        project: ProjectContext,
        mod_name: str,
        call: ast.Call,
        rng_names: set[str],
        executors: set[str],
        rng_globals: dict[str, set[str]],
        pickled: tuple[str, ...],
    ) -> Iterator[Finding]:
        module = project.modules[mod_name]
        func = call.func
        # -- pool.submit(fn, ...) / pool.map(fn, ...) ------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and isinstance(func.value, ast.Name)
            and (
                func.value.id in executors
                or "pool" in func.value.id.lower()
                or "executor" in func.value.id.lower()
            )
            and call.args
        ):
            for arg in call.args[1:]:
                if _is_rng_expr(arg, module, rng_names):
                    yield self.finding(
                        module,
                        arg.lineno,
                        arg.col_offset,
                        "RNG stream passed to a process-pool worker; the "
                        "generator state gets pickled — derive the stream "
                        "inside the worker from plain indices",
                    )
            fn_arg = call.args[0]
            fn_name = dotted_name(fn_arg)
            target = (
                project.resolve(mod_name, fn_name) if fn_name is not None else None
            )
            info = project.functions.get(target) if target else None
            if info is not None:
                captured = {
                    node.id
                    for node in ast.walk(info.node)
                    if isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                } & rng_globals.get(info.module, set())
                if captured:
                    yield self.finding(
                        module,
                        fn_arg.lineno,
                        fn_arg.col_offset,
                        f"submitted worker {target}() reads module-level "
                        f"RNG state ({', '.join(sorted(captured))}); worker "
                        "processes must re-derive streams locally",
                    )
        # -- pickled work-unit constructors ----------------------------
        callee = dotted_name(func)
        basename = callee.rsplit(".", 1)[-1] if callee else None
        if basename in pickled:
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if _is_rng_expr(arg, module, rng_names):
                    yield self.finding(
                        module,
                        arg.lineno,
                        arg.col_offset,
                        f"RNG stream pickled into {basename}; work units "
                        "must carry seeds/indices, not live generator state",
                    )


def _calls_in_scope(scope: ast.AST) -> Iterator[ast.Call]:
    """Calls lexically in ``scope``, not descending into nested defs."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(child, ast.Call):
            yield child
        yield from _calls_in_scope(child)
