"""The committed baseline: known findings that are tolerated, for now.

A baseline lets the linter be adopted on a tree with pre-existing debt:
current findings are recorded by fingerprint and stop failing the
build, while anything *new* still does.  The file is JSON, committed,
and reviewed like code — shrinking it is progress, growing it needs a
reason.  (This repo's baseline is empty: every pre-existing violation
was fixed or explicitly suppressed inline.)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .findings import Finding

FORMAT_VERSION = 1


def load_baseline(path: Path) -> dict[str, dict[str, object]]:
    """Fingerprint -> recorded finding info.  Missing file = empty."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"malformed baseline file {path}")
    return findings


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Record the given findings; returns how many were written."""
    entries = {
        f.fingerprint(): {
            "rule": f.rule_id,
            "path": f.path,
            "line": f.line,
            "message": f.message,
        }
        for f in sorted(findings)
    }
    payload = {"version": FORMAT_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def prune_baseline(path: Path, current: Iterable[Finding]) -> tuple[int, int]:
    """Drop baseline entries whose finding no longer fires.

    ``current`` is every finding the run produced (actionable *and*
    baselined).  Returns ``(kept, pruned)``; the file is rewritten only
    when something was pruned, so a clean tree is a no-op.  A missing
    baseline prunes nothing.
    """
    if not path.exists():
        return 0, 0
    baseline = load_baseline(path)
    live = {finding.fingerprint() for finding in current}
    kept = {fp: info for fp, info in baseline.items() if fp in live}
    pruned = len(baseline) - len(kept)
    if pruned:
        payload = {"version": FORMAT_VERSION, "findings": kept}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(kept), pruned


def split_by_baseline(
    findings: list[Finding], baseline: dict[str, dict[str, object]]
) -> tuple[list[Finding], list[Finding]]:
    """(new, baselined) partition of the findings."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.fingerprint() in baseline else new).append(finding)
    return new, old
