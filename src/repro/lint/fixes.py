"""Safe, span-based auto-fixes for the mechanical subset of findings.

A :class:`Fix` is a single source-span replacement attached to a
finding by the rule that produced it (wrap an unsorted directory scan
in ``sorted(...)``, coerce an integral float literal feeding an int-ns
API to an exact int).  Rules only attach a fix when the rewrite is
behaviour-preserving by construction; everything judgement-shaped stays
a plain finding.

:func:`apply_fixes` rewrites one module's source text.  Spans are
applied back-to-front so earlier offsets stay valid, and overlapping
fixes are skipped (first-sorted wins) rather than risking a mangled
file — ``repro-lint --fix`` re-lints afterwards, so a skipped fix
simply remains a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["Fix", "fix_for_node", "apply_fixes", "apply_fix_findings"]


@dataclass(frozen=True)
class Fix:
    """Replace one ``[start, end)`` source span with ``replacement``.

    Lines are 1-based, columns 0-based, as in the ``ast`` module.
    """

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str

    def to_dict(self) -> dict[str, object]:
        return {
            "start_line": self.start_line,
            "start_col": self.start_col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "replacement": self.replacement,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Fix":
        return cls(
            start_line=int(data["start_line"]),
            start_col=int(data["start_col"]),
            end_line=int(data["end_line"]),
            end_col=int(data["end_col"]),
            replacement=str(data["replacement"]),
        )


def fix_for_node(node: ast.expr, replacement: str) -> Fix | None:
    """A fix replacing exactly ``node``'s span (None if span unknown)."""
    if node.end_lineno is None or node.end_col_offset is None:
        return None  # pragma: no cover - py3.8+ always fills these
    return Fix(
        start_line=node.lineno,
        start_col=node.col_offset,
        end_line=node.end_lineno,
        end_col=node.end_col_offset,
        replacement=replacement,
    )


def apply_fixes(source: str, fixes: list[Fix]) -> tuple[str, int]:
    """Apply non-overlapping fixes to ``source``; (new text, applied count).

    Fixes are applied last-span-first.  A fix whose span overlaps an
    already-applied one is skipped, as is any span that does not fall
    inside the text (stale cache entries after an external edit).
    """
    starts = _line_offsets(source)

    def offset(line: int, col: int) -> int | None:
        if not 1 <= line <= len(starts):
            return None
        position = starts[line - 1] + col
        return position if position <= len(source) else None

    spans: list[tuple[int, int, str]] = []
    for fix in fixes:
        begin = offset(fix.start_line, fix.start_col)
        end = offset(fix.end_line, fix.end_col)
        if begin is None or end is None or begin > end:
            continue
        spans.append((begin, end, fix.replacement))

    applied = 0
    text = source
    floor = len(source) + 1  # lowest begin already rewritten
    for begin, end, replacement in sorted(spans, reverse=True):
        if end > floor:
            continue  # overlaps a fix already applied
        text = text[:begin] + replacement + text[end:]
        floor = begin
        applied += 1
    return text, applied


def apply_fix_findings(findings, root) -> dict[str, int]:
    """Rewrite files on disk from fixable findings; path -> fixes applied.

    Findings carry repository-relative display paths; ``root`` anchors
    them back onto the filesystem.  Files that vanished since the lint
    run are skipped silently — the caller re-lints afterwards anyway.
    """
    from pathlib import Path

    by_path: dict[str, list[Fix]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding.fix)
    applied: dict[str, int] = {}
    for display, fixes in sorted(by_path.items()):
        target = Path(display)
        if not target.is_absolute():
            target = Path(root) / display
        try:
            source = target.read_text(encoding="utf-8")
        except OSError:
            continue
        text, count = apply_fixes(source, fixes)
        if count:
            target.write_text(text, encoding="utf-8")
            applied[display] = count
    return applied


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets[:-1] if source else offsets
