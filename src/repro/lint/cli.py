"""``repro-lint``: the simlint command line.

Examples::

    repro-lint src/                      # lint the tree, exit 1 on findings
    repro-lint src/ --format json        # machine-readable output
    repro-lint src/ --write-baseline     # accept current findings as debt
    repro-lint src/ --fix                # apply safe auto-fixes, re-lint
    repro-lint src/ --cache .simlint-cache.json   # incremental runs
    repro-lint src/ --prune-baseline     # drop stale baseline entries
    repro-lint --list-rules              # what is enforced, and why
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .baseline import prune_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import lint_paths
from .fixes import apply_fix_findings
from .reporters import REPORTERS
from .rules import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulator-specific static analysis: determinism, "
        "unit, and RNG-stream discipline.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, default=[], help="files or directories"
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config", type=Path, default=None,
        help="pyproject.toml to read [tool.simlint] from "
        "(default: nearest above the current directory)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all enabled)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; report all findings",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="drop baseline entries that no longer fire; exit 1 if any "
        "were stale (CI guard)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply safe auto-fixes in place, then re-lint",
    )
    parser.add_argument(
        "--cache", type=Path, default=None, metavar="PATH",
        help="incremental-cache file (overrides [tool.simlint] cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore any configured incremental cache",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _list_rules(config: LintConfig) -> str:
    lines = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        state = "disabled" if rule_id in config.disable else "enabled"
        lines.append(f"{rule_id}  {rule_cls.name:<18} [{state}]")
        lines.append(f"       {rule_cls.description}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro-lint ... | head``) closed the
        # pipe; exit quietly without a traceback.  stdout is dup'ed onto
        # devnull so the interpreter's shutdown flush stays silent too.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


def _run(argv: Sequence[str] | None) -> int:
    args = build_parser().parse_args(argv)
    config = load_config(pyproject=args.config)

    if args.list_rules:
        print(_list_rules(config))
        return 0
    if not args.paths:
        print("repro-lint: no paths given (try: repro-lint src/)", file=sys.stderr)
        return 2
    if args.select:
        selected = {part.strip().upper() for part in args.select.split(",")}
        known = set(all_rules())
        unknown = sorted(selected - known)
        if unknown:
            print(f"repro-lint: unknown rules {unknown}", file=sys.stderr)
            return 2
        config.disable = sorted(known - selected)
    if args.no_baseline:
        config.use_baseline = False
    if args.cache is not None:
        config.cache = str(args.cache)
    if args.no_cache:
        config.use_cache = False

    result = lint_paths(args.paths, config)

    if args.fix:
        applied = apply_fix_findings(result.findings, config.root)
        total = sum(applied.values())
        for display, count in applied.items():
            print(f"fixed: {display} ({count} rewrite{'s' if count != 1 else ''})")
        print(f"applied {total} auto-fix{'es' if total != 1 else ''}")
        if applied:
            result = lint_paths(args.paths, config)

    if args.prune_baseline:
        kept, pruned = prune_baseline(
            config.baseline_path, result.findings + result.baselined
        )
        print(
            f"baseline: {kept} entries kept, {pruned} stale entries pruned"
        )
        return 1 if pruned else 0

    if args.write_baseline:
        count = write_baseline(
            config.baseline_path, result.findings + result.baselined
        )
        print(f"wrote {count} findings to {config.baseline_path}")
        return 0

    print(REPORTERS[args.format](result, verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
