"""Incremental lint cache keyed on file content hashes.

Whole-program linting re-reads every file on every run; most runs touch
almost nothing, so the cache makes the warm path cheap: per-file
module-phase findings are stored under the file's SHA-256, and the
project-phase findings under a *tree* hash over every (path, sha) pair.
A fully warm run therefore does no parsing and no rule execution at
all — it hashes file contents and deserializes findings, which is what
makes whole-repo CI lint fast enough to run on every push.

Every entry is additionally keyed on a *config signature* (rule ids,
rule options, disables, and the cache schema version), so changing the
lint configuration invalidates everything at once.  The cache file is
advisory: corrupt, missing, or version-skewed files degrade to a cold
run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rules import Rule

__all__ = ["LintCache", "config_signature"]

CACHE_FORMAT = "simlint-cache-v1"


def config_signature(rules: Sequence["Rule"]) -> str:
    """Hash of everything that changes findings besides file content."""
    record = {
        "format": CACHE_FORMAT,
        "rules": {
            rule.id: {key: repr(value) for key, value in sorted(rule.options.items())}
            for rule in rules
        },
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def content_sha(source_bytes: bytes) -> str:
    return hashlib.sha256(source_bytes).hexdigest()


class LintCache:
    """Load/store per-file and whole-tree lint results.

    ``path=None`` disables caching entirely: every lookup misses and
    :meth:`save` is a no-op, so the engine needs no branching.
    """

    def __init__(self, path: Path | None, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                data = {}
            if (
                data.get("format") == CACHE_FORMAT
                and data.get("signature") == signature
                and isinstance(data.get("files"), dict)
            ):
                self._files = data["files"]
                project = data.get("project")
                self._project = project if isinstance(project, dict) else None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    # -- per-file module-phase entries ---------------------------------

    def lookup_file(
        self, display: str, sha: str
    ) -> tuple[list[Finding], list[Finding]] | None:
        """Cached (kept, suppressed) module-phase findings, or None."""
        if not self.enabled:
            return None
        entry = self._files.get(display)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            self.misses += 1
            return None
        try:
            kept = [Finding.from_dict(f) for f in entry["findings"]]
            suppressed = [Finding.from_dict(f) for f in entry["suppressed"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return kept, suppressed

    def store_file(
        self,
        display: str,
        sha: str,
        kept: list[Finding],
        suppressed: list[Finding],
    ) -> None:
        self._files[display] = {
            "sha": sha,
            "findings": [f.to_dict() for f in kept],
            "suppressed": [f.to_dict() for f in suppressed],
        }

    # -- whole-tree project-phase entry --------------------------------

    @staticmethod
    def tree_sha(file_shas: dict[str, str]) -> str:
        blob = json.dumps(sorted(file_shas.items()), separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def lookup_project(
        self, tree: str
    ) -> tuple[list[Finding], list[Finding]] | None:
        if not self.enabled:
            return None
        entry = self._project
        if not isinstance(entry, dict) or entry.get("tree") != tree:
            self.misses += 1
            return None
        try:
            kept = [Finding.from_dict(f) for f in entry["findings"]]
            suppressed = [Finding.from_dict(f) for f in entry["suppressed"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return kept, suppressed

    def store_project(
        self, tree: str, kept: list[Finding], suppressed: list[Finding]
    ) -> None:
        self._project = {
            "tree": tree,
            "findings": [f.to_dict() for f in kept],
            "suppressed": [f.to_dict() for f in suppressed],
        }

    # -- persistence ---------------------------------------------------

    def save(self, current_files: set[str] | None = None) -> None:
        """Write the cache atomically, dropping entries for gone files."""
        if self.path is None:
            return
        if current_files is not None:
            self._files = {
                path: entry
                for path, entry in self._files.items()
                if path in current_files
            }
        payload = {
            "format": CACHE_FORMAT,
            "signature": self.signature,
            "files": self._files,
            "project": self._project,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
