"""Inline suppression comments.

Syntax, modelled on pylint/ruff::

    foo = random.Random(cfg.seed)  # simlint: disable=SL001 -- why it's ok
    # simlint: disable-file=SL003,SL004
    bar()  # simlint: disable=all

``disable=`` suppresses the named rules on that line only;
``disable-file=`` (anywhere in the file) suppresses them for the whole
module.  ``all`` suppresses every rule.  Text after ``--`` is a free-
form justification and is encouraged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .findings import Finding

_PATTERN = re.compile(
    r"#\s*simlint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)


@dataclass
class SuppressionIndex:
    """Parsed suppression directives for one module."""

    line_rules: dict[int, set[str]] = field(default_factory=dict)
    file_rules: set[str] = field(default_factory=set)
    #: directive lines that matched nothing yet — for unused reporting.
    used: set[tuple[int, str]] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str) -> "SuppressionIndex":
        index = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PATTERN.search(text)
            if not match:
                continue
            rules = {
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            }
            if match.group("scope") == "disable-file":
                index.file_rules |= rules
            else:
                index.line_rules.setdefault(lineno, set()).update(rules)
        return index

    def suppresses(self, finding: Finding) -> bool:
        if "ALL" in self.file_rules or finding.rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(finding.line, ())
        return "ALL" in rules or finding.rule_id in rules
