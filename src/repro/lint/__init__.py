"""simlint: simulator-specific static analysis.

The reproduction's value rests on bit-exact determinism — identical
topologies and RNG draws for every MAC scheme in an A/B comparison, an
integer-nanosecond clock free of float drift.  ``repro.dessim.rng`` and
``repro.dessim.units`` provide those guarantees; this package *enforces*
them.  It is a small AST-based lint framework with a plugin rule
registry, inline suppressions, a committed baseline, and text/JSON
reporters, exposed as the ``repro-lint`` console script and
``python -m repro.lint``.

Shipped rules (see :mod:`repro.lint.rules`):

======  ====================  ==============================================
id      name                  enforces
======  ====================  ==============================================
SL001   rng-discipline        no ad-hoc ``random`` streams outside the
                              registry; components accept injected streams
SL002   wall-clock-ban        no ``time.time()`` / ``datetime.now()`` /
                              other host-clock or entropy reads
SL003   unit-discipline       float literals must pass through the
                              ``units`` helpers before reaching the
                              integer-nanosecond scheduler/timer APIs
SL004   iteration-order       no iteration over bare ``set``s in event-path
                              packages (hash order is run-dependent)
SL005   seed-plumbing         constructors must not default ``rng``/``seed``
                              parameters
======  ====================  ==============================================
"""

from __future__ import annotations

from .config import LintConfig, load_config
from .engine import LintResult, lint_paths, lint_source
from .findings import Finding
from .rules import Rule, all_rules, get_rule, register

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
