"""simlint: simulator-specific static analysis.

The reproduction's value rests on bit-exact determinism — identical
topologies and RNG draws for every MAC scheme in an A/B comparison, an
integer-nanosecond clock free of float drift.  ``repro.dessim.rng`` and
``repro.dessim.units`` provide those guarantees; this package *enforces*
them.  It is an AST-based lint framework with a plugin rule registry,
inline suppressions, a committed baseline, safe auto-fixes
(``repro-lint --fix``), an incremental content-hash cache, and
text/JSON reporters, exposed as the ``repro-lint`` console script and
``python -m repro.lint``.

Analysis runs in two phases: per-module rules see one file's AST at a
time, while *project* rules (:class:`~repro.lint.rules.ProjectRule`)
run once over a whole-program :class:`~repro.lint.project.ProjectContext`
— module index, import resolution, call graph, dataclass fields — so
they can follow a value across module boundaries.

Shipped rules (see :mod:`repro.lint.rules` and ``docs/linting.md``):

======  =====================  =============================================
id      name                   enforces
======  =====================  =============================================
SL001   rng-discipline         no ad-hoc ``random`` streams outside the
                               registry; components accept injected streams
SL002   wall-clock-ban         no ``time.time()`` / ``datetime.now()`` /
                               other host-clock or entropy reads
SL003   unit-discipline        float literals must pass through the
                               ``units`` helpers before reaching the
                               integer-nanosecond scheduler/timer APIs
SL004   iteration-order        no iteration over bare ``set``s in event-path
                               packages (hash order is run-dependent)
SL005   seed-plumbing          constructors must not default ``rng``/``seed``
                               parameters
SL006   event-time-flow        no float flowing into an int-ns time
                               parameter anywhere in the call graph
SL007   rng-process-boundary   no RNG stream shipped across the process-pool
                               boundary or pickled into a work unit
SL008   fs-scan-order          no iterating ``glob``/``iterdir``/``listdir``
                               results unsorted (platform order)
SL009   telemetry-purity       instruments stay write-only; telemetry on/off
                               runs must be byte-identical
SL010   fingerprint-coverage   every config dataclass field reaches the
                               campaign fingerprint
======  =====================  =============================================
"""

from __future__ import annotations

from .config import LintConfig, load_config
from .engine import LintResult, lint_paths, lint_source
from .findings import Finding
from .rules import Rule, all_rules, get_rule, register

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
