"""The whole-program pass: module index, imports, call graph.

Per-module rules see one AST at a time; the contract violations that
actually bite now cross module boundaries — a config field that never
reaches the fingerprint function two modules away, an RNG stream
captured by a function submitted to a process pool.  This module builds
the shared :class:`ProjectContext` those rules query: a dotted-name
module index over every linted file, per-module import resolution
(relative imports included), a symbol table of top-level functions,
classes, and methods, a conservative call graph, and a dataclass field
index with in-project base-class resolution.

Everything here is *conservative*: unresolvable names resolve to
``None`` and never produce findings, so dynamic dispatch degrades the
analysis to per-module precision rather than to false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .context import ModuleContext

__all__ = ["ProjectContext", "module_name_for_path", "DataclassInfo"]

#: Directory names treated as source roots: the dotted module name of a
#: file starts *after* the last occurrence of one of these.
_SOURCE_ROOTS = frozenset({"src", "lib"})


def module_name_for_path(path: str) -> str:
    """Dotted module name for a posix source path.

    ``src/repro/mac/dcf.py`` → ``repro.mac.dcf``;
    ``src/repro/phy/__init__.py`` → ``repro.phy``.  Without a ``src``/
    ``lib`` component the whole relative path becomes the dotted name,
    which keeps fixture trees in tests addressable.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p not in ("", ".")]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _SOURCE_ROOTS:
            parts = parts[index + 1:]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class DataclassInfo:
    """One ``@dataclass``-decorated class as the project pass sees it."""

    qualname: str  # module-qualified, e.g. repro.experiments.config.SimStudyConfig
    module: str
    node: ast.ClassDef
    #: Annotated field names in declaration order (ClassVar excluded).
    fields: tuple[str, ...]
    #: Resolved in-project base qualnames (unresolvable bases dropped).
    bases: tuple[str, ...]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # repro.mod.func or repro.mod.Class.method
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Enclosing class basename for methods, else None.
    owner: str | None = None


@dataclass
class ProjectContext:
    """Cross-module facts shared by every project-phase rule.

    Built once per lint run from all parsed modules; rules iterate
    :attr:`modules` for syntax and use :meth:`resolve` /
    :meth:`callees_of` / :meth:`dataclass_fields` for the cross-module
    questions a single AST cannot answer.
    """

    #: Dotted module name -> parsed module.
    modules: dict[str, ModuleContext] = field(default_factory=dict)
    #: Module-qualified symbol -> defining AST node (functions, classes,
    #: methods as ``module.Class.method``).
    symbols: dict[str, ast.AST] = field(default_factory=dict)
    #: Function qualname -> FunctionInfo for every def in the project.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Dataclass qualname -> info.
    dataclasses: dict[str, DataclassInfo] = field(default_factory=dict)
    #: Caller qualname -> resolved callee qualnames (conservative).
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: Per-module alias map including *relative* imports, resolved to
    #: absolute dotted origins (supersets ModuleContext.aliases).
    import_maps: dict[str, dict[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, modules: list[ModuleContext]) -> "ProjectContext":
        project = cls()
        for module in modules:
            name = module_name_for_path(module.path)
            project.modules[name] = module
            project.import_maps[name] = _absolute_aliases(name, module.tree)
            project._index_symbols(name, module)
        for name, module in project.modules.items():
            project._index_calls(name, module)
        return project

    def _index_symbols(self, mod_name: str, module: ModuleContext) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{mod_name}.{node.name}"
                self.symbols[qualname] = node
                self.functions[qualname] = FunctionInfo(qualname, mod_name, node)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{mod_name}.{node.name}"
                self.symbols[cls_qual] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        meth_qual = f"{cls_qual}.{item.name}"
                        self.symbols[meth_qual] = item
                        self.functions[meth_qual] = FunctionInfo(
                            meth_qual, mod_name, item, owner=node.name
                        )
                if _is_dataclass(node, module):
                    self.dataclasses[cls_qual] = DataclassInfo(
                        qualname=cls_qual,
                        module=mod_name,
                        node=node,
                        fields=_annotated_fields(node),
                        bases=tuple(
                            base_qual
                            for base in node.bases
                            if (base_qual := self._resolve_base(mod_name, base))
                        ),
                    )

    def _resolve_base(self, mod_name: str, base: ast.expr) -> str | None:
        from .context import dotted_name

        name = dotted_name(base)
        if name is None:
            return None
        return self.resolve(mod_name, name)

    def _index_calls(self, mod_name: str, module: ModuleContext) -> None:
        for info in self.functions.values():
            if info.module != mod_name:
                continue
            callees = self.calls.setdefault(info.qualname, set())
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_call(mod_name, node, owner=info.owner)
                if target is not None:
                    callees.add(target)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def resolve(self, mod_name: str, dotted: str) -> str | None:
        """Project qualname a dotted local name refers to, if any.

        Expands the module's import aliases (absolute and relative) and
        accepts names defined in the module itself.  Returns ``None``
        for anything that does not land on a project symbol.
        """
        aliases = self.import_maps.get(mod_name, {})
        head, _, rest = dotted.partition(".")
        origin = aliases.get(head)
        expanded = f"{origin}.{rest}" if origin and rest else (origin or dotted)
        for candidate in (expanded, f"{mod_name}.{dotted}"):
            if candidate in self.symbols or candidate in self.modules:
                return candidate
        # ``pkg.attr`` where ``pkg`` re-exports a submodule symbol: try
        # resolving the tail against the imported module's own imports.
        if origin and rest and origin in self.modules:
            return self.resolve(origin, rest)
        return None

    def resolve_call(
        self, mod_name: str, call: ast.Call, owner: str | None = None
    ) -> str | None:
        """Project qualname of a call's target, if statically known.

        Handles plain names, imported names, dotted module access, and
        ``self.method(...)`` when ``owner`` (the enclosing class) is
        given.  Constructor calls resolve to the class qualname.
        """
        from .context import dotted_name

        name = dotted_name(call.func)
        if name is None:
            return None
        if owner is not None and name.startswith(("self.", "cls.")):
            method = name.split(".", 1)[1]
            if "." not in method:
                candidate = f"{mod_name}.{owner}.{method}"
                if candidate in self.symbols:
                    return candidate
                # Inherited method: search resolved bases.
                cls_qual = f"{mod_name}.{owner}"
                info = self.dataclasses.get(cls_qual)
                for base in info.bases if info else ():
                    candidate = f"{base}.{method}"
                    if candidate in self.symbols:
                        return candidate
            return None
        return self.resolve(mod_name, name)

    def callees_of(self, qualname: str) -> frozenset[str]:
        return frozenset(self.calls.get(qualname, ()))

    def callers_of(self, qualname: str) -> frozenset[str]:
        return frozenset(
            caller for caller, callees in self.calls.items() if qualname in callees
        )

    def dataclass_fields(self, qualname: str) -> tuple[str, ...]:
        """Own + inherited annotated fields, base-first like ``asdict``.

        Follows in-project bases transitively; fields redeclared in a
        subclass keep their first (base) position, matching dataclass
        semantics closely enough for coverage checks.
        """
        info = self.dataclasses.get(qualname)
        if info is None:
            return ()
        ordered: list[str] = []
        for base in info.bases:
            for name in self.dataclass_fields(base):
                if name not in ordered:
                    ordered.append(name)
        for name in info.fields:
            if name not in ordered:
                ordered.append(name)
        return tuple(ordered)

    def module_of(self, qualname: str) -> ModuleContext | None:
        """The ModuleContext a project symbol was defined in."""
        mod_name, _, _ = qualname.rpartition(".")
        while mod_name:
            module = self.modules.get(mod_name)
            if module is not None:
                return module
            mod_name, _, _ = mod_name.rpartition(".")
        return self.modules.get(qualname)


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------


def _absolute_aliases(mod_name: str, tree: ast.Module) -> dict[str, str]:
    """Local name -> absolute dotted origin, relative imports included.

    The per-module :func:`~repro.lint.context.resolve_import_aliases`
    deliberately skips relative imports (it has no idea where the module
    lives); here the dotted module name anchors them:
    ``from ..dessim.rng import RngRegistry`` inside
    ``repro.experiments.campaign`` maps ``RngRegistry`` to
    ``repro.dessim.rng.RngRegistry``.
    """
    aliases: dict[str, str] = {}
    package_parts = mod_name.split(".")[:-1] if mod_name else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname if item.asname else item.name.split(".")[0]
                origin = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # level=1 is the containing package, each extra level
                # one package higher.
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + (node.module.split(".") if node.module else []))
            elif node.module is not None:
                base = node.module
            else:  # pragma: no cover - "from import" without module
                continue
            if not base:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname if item.asname else item.name
                aliases[local] = f"{base}.{item.name}"
    return aliases


def _is_dataclass(node: ast.ClassDef, module: ModuleContext) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        from .context import dotted_name

        name = dotted_name(target)
        if name is None:
            continue
        resolved = module.aliases.get(name.split(".")[0])
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
        if resolved == "dataclasses.dataclass" or (
            resolved == "dataclasses" and name.endswith(".dataclass")
        ):
            return True
    return False


def _annotated_fields(node: ast.ClassDef) -> tuple[str, ...]:
    fields: list[str] = []
    for item in node.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(
            item.target, ast.Name
        ):
            continue
        if _is_classvar(item.annotation):
            continue
        fields.append(item.target.id)
    return tuple(fields)


def _is_classvar(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return isinstance(node, ast.Name) and node.id == "ClassVar"
