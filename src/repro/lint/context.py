"""Per-module analysis context shared by all rules.

Parsing, import-alias resolution, and path matching are done once per
file here so individual rules stay small.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch


def resolve_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import random as rnd``            -> ``{"rnd": "random"}``
    ``from random import Random``       -> ``{"Random": "random.Random"}``
    ``from datetime import datetime``   -> ``{"datetime": "datetime.datetime"}``
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname if item.asname else item.name.split(".")[0]
                origin = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay project-internal
            for item in node.names:
                local = item.asname if item.asname else item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def path_matches(path: str, pattern: str) -> bool:
    """Whether a posix ``path`` matches an allow/scope ``pattern``.

    Patterns are matched against path *suffixes* so configs can say
    ``dessim/rng.py`` or ``cli.py`` without caring where the source
    root lives.  A trailing slash means "anywhere under a directory of
    this name"; ``*`` wildcards are honoured.
    """
    path = path.replace("\\", "/").lstrip("./")
    pattern = pattern.replace("\\", "/")
    if pattern.endswith("/"):
        return f"/{pattern}" in f"/{path}"
    if path == pattern or path.endswith(f"/{pattern}"):
        return True
    return fnmatch(path, pattern) or fnmatch(path, f"*/{pattern}")


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one module."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path.replace("\\", "/"),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            aliases=resolve_import_aliases(tree),
        )

    def source_line(self, lineno: int) -> str:
        """Stripped text of a 1-based line (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolved_call_name(self, node: ast.Call) -> str | None:
        """Dotted name of the callee with import aliases expanded.

        ``rnd.randint(...)`` resolves to ``random.randint`` when the
        module did ``import random as rnd``.  Calls on non-name bases
        (``foo().bar()``, ``rng.random()`` with ``rng`` a local) resolve
        to their literal chain or ``None``.
        """
        name = dotted_name(node.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        origin = self.aliases.get(head)
        if origin is not None:
            return f"{origin}.{rest}" if rest else origin
        return name

    def in_any(self, patterns: list[str] | tuple[str, ...]) -> bool:
        return any(path_matches(self.path, p) for p in patterns)
