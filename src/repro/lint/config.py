"""Configuration: ``[tool.simlint]`` in pyproject.toml.

Example::

    [tool.simlint]
    baseline = ".simlint-baseline.json"
    plugins = []                      # importable modules with @register rules
    disable = []                      # rule ids to turn off entirely

    [tool.simlint.rules.SL001]
    allow = ["dessim/rng.py", "cli.py"]

Every key under ``rules.<id>`` overrides that rule's
``default_options`` entry of the same name.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class LintConfig:
    baseline: str = ".simlint-baseline.json"
    use_baseline: bool = True
    #: Incremental-cache file; ``None`` (the default) disables caching.
    #: Opt in via ``cache = ".simlint-cache.json"`` or ``--cache``.
    cache: str | None = None
    use_cache: bool = True
    plugins: list[str] = field(default_factory=list)
    disable: list[str] = field(default_factory=list)
    rule_options: dict[str, dict[str, object]] = field(default_factory=dict)
    #: Directory the config was loaded from; baseline and cache paths
    #: resolve against it.
    root: Path = field(default_factory=Path.cwd)

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline

    @property
    def cache_path(self) -> Path | None:
        if self.cache is None:
            return None
        return self.root / self.cache

    def options_for(self, rule_id: str) -> dict[str, object]:
        return self.rule_options.get(rule_id, {})


def find_pyproject(start: Path) -> Path | None:
    """Nearest pyproject.toml at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(pyproject: Path | None = None, start: Path | None = None) -> LintConfig:
    """Load ``[tool.simlint]``; absent file or table gives defaults."""
    if pyproject is None:
        pyproject = find_pyproject(start if start is not None else Path.cwd())
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("simlint", {})
    known = {"baseline", "cache", "plugins", "disable", "rules"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise ValueError(
            f"unknown [tool.simlint] keys {unknown} in {pyproject}"
        )
    return LintConfig(
        baseline=table.get("baseline", ".simlint-baseline.json"),
        cache=table.get("cache"),
        plugins=list(table.get("plugins", [])),
        disable=[r.upper() for r in table.get("disable", [])],
        rule_options={
            rule_id.upper(): dict(options)
            for rule_id, options in table.get("rules", {}).items()
        },
        root=pyproject.parent,
    )
