"""The lint driver: files -> AST -> rules -> suppressions -> baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import load_baseline, split_by_baseline
from .config import LintConfig
from .context import ModuleContext
from .findings import Finding
from .rules import Rule, all_rules, load_plugins
from .suppressions import SuppressionIndex

__all__ = ["LintResult", "lint_paths", "lint_source", "build_rules"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  # unparseable files
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def build_rules(config: LintConfig) -> list[Rule]:
    """Instantiate every enabled rule with its configured options."""
    load_plugins(config.plugins)
    rules = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        if rule_id in config.disable:
            continue
        rules.append(rule_cls(config.options_for(rule_id)))
    return rules


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> tuple[list[Finding], list[Finding]]:
    """Lint one in-memory module.  Returns (kept, suppressed)."""
    module = ModuleContext.parse(path, source)
    suppressions = SuppressionIndex.parse(source)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            (suppressed if suppressions.suppresses(finding) else kept).append(
                finding
            )
    return sorted(kept), sorted(suppressed)


def lint_paths(paths: Sequence[Path], config: LintConfig) -> LintResult:
    """Lint files/trees and apply the configured baseline."""
    rules = build_rules(config)
    result = LintResult()
    raw: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{file_path}: unreadable: {exc}")
            continue
        display = _display_path(file_path, config.root)
        try:
            kept, suppressed = lint_source(source, display, rules)
        except SyntaxError as exc:
            result.errors.append(f"{display}: syntax error: {exc}")
            continue
        result.files_checked += 1
        raw.extend(kept)
        result.suppressed.extend(suppressed)
    baseline = load_baseline(config.baseline_path) if config.use_baseline else {}
    result.findings, result.baselined = split_by_baseline(sorted(raw), baseline)
    return result


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
