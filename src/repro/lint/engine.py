"""The lint driver: files -> AST -> rules -> suppressions -> baseline.

Two phases since simlint v2:

1. **Module phase** — every per-module rule runs over one file's AST at
   a time, exactly as v1 did.  Results are cacheable per file by
   content hash.
2. **Project phase** — all parsed modules feed one
   :class:`~repro.lint.project.ProjectContext` (symbol index, import
   resolution, call graph), and every
   :class:`~repro.lint.rules.ProjectRule` runs once over it.  Results
   are cacheable under a whole-tree content hash.

Suppressions and the baseline apply uniformly to both phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import load_baseline, split_by_baseline
from .cache import LintCache, config_signature, content_sha
from .config import LintConfig
from .context import ModuleContext
from .findings import Finding
from .project import ProjectContext
from .rules import ProjectRule, Rule, all_rules, load_plugins
from .suppressions import SuppressionIndex

__all__ = ["LintResult", "lint_paths", "lint_source", "build_rules"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)  # unparseable files
    files_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def build_rules(config: LintConfig) -> list[Rule]:
    """Instantiate every enabled rule with its configured options."""
    load_plugins(config.plugins)
    rules = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        if rule_id in config.disable:
            continue
        rules.append(rule_cls(config.options_for(rule_id)))
    return rules


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def split_rules(rules: Sequence[Rule]) -> tuple[list[Rule], list[ProjectRule]]:
    """(module-phase, project-phase) partition of a rule list."""
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return module_rules, project_rules


def _run_module_rules(
    module: ModuleContext,
    suppressions: SuppressionIndex,
    rules: Sequence[Rule],
) -> tuple[list[Finding], list[Finding]]:
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            (suppressed if suppressions.suppresses(finding) else kept).append(
                finding
            )
    return kept, suppressed


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> tuple[list[Finding], list[Finding]]:
    """Lint one in-memory module.  Returns (kept, suppressed).

    Project rules in ``rules`` run over a degenerate single-module
    project, so cross-module rules still catch the violations that are
    visible within one file.
    """
    module = ModuleContext.parse(path, source)
    suppressions = SuppressionIndex.parse(source)
    module_rules, project_rules = split_rules(rules)
    kept, suppressed = _run_module_rules(module, suppressions, module_rules)
    if project_rules:
        project = ProjectContext.build([module])
        for rule in project_rules:
            for finding in rule.check_project(project):
                (suppressed if suppressions.suppresses(finding) else kept).append(
                    finding
                )
    return sorted(kept), sorted(suppressed)


def lint_paths(paths: Sequence[Path], config: LintConfig) -> LintResult:
    """Lint files/trees: module phase, project phase, baseline.

    With ``config.cache`` set, per-file and whole-tree results are
    reused from the on-disk cache when content hashes match; a fully
    warm run parses nothing.
    """
    rules = build_rules(config)
    module_rules, project_rules = split_rules(rules)
    cache = LintCache(
        config.cache_path if config.use_cache else None, config_signature(rules)
    )
    result = LintResult()
    raw: list[Finding] = []

    #: display path -> source text for every readable file, parsed lazily.
    sources: dict[str, str] = {}
    file_shas: dict[str, str] = {}
    parsed: dict[str, ModuleContext] = {}
    suppression_index: dict[str, SuppressionIndex] = {}

    def parse(display: str) -> ModuleContext | None:
        """Parse (memoized); on SyntaxError record the error once."""
        if display in parsed:
            return parsed[display]
        try:
            module = ModuleContext.parse(display, sources[display])
        except SyntaxError as exc:
            result.errors.append(f"{display}: syntax error: {exc}")
            return None
        parsed[display] = module
        suppression_index[display] = SuppressionIndex.parse(sources[display])
        return module

    # -- module phase --------------------------------------------------
    for file_path in iter_python_files(paths):
        try:
            raw_bytes = file_path.read_bytes()
            source = raw_bytes.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{file_path}: unreadable: {exc}")
            continue
        display = _display_path(file_path, config.root)
        sha = content_sha(raw_bytes)
        sources[display] = source
        file_shas[display] = sha
        cached = cache.lookup_file(display, sha)
        if cached is not None:
            kept, suppressed = cached
        else:
            module = parse(display)
            if module is None:
                continue  # syntax errors are never cached
            kept, suppressed = _run_module_rules(
                module, suppression_index[display], module_rules
            )
            cache.store_file(display, sha, kept, suppressed)
        result.files_checked += 1
        raw.extend(kept)
        result.suppressed.extend(suppressed)

    # -- project phase -------------------------------------------------
    if project_rules and file_shas:
        tree = LintCache.tree_sha(file_shas)
        cached_project = cache.lookup_project(tree)
        if cached_project is not None:
            kept, suppressed = cached_project
            raw.extend(kept)
            result.suppressed.extend(suppressed)
        else:
            modules = [
                module
                for display in sorted(sources)
                if (module := parse(display)) is not None
            ]
            project = ProjectContext.build(modules)
            kept, suppressed = [], []
            for rule in project_rules:
                for finding in rule.check_project(project):
                    index = suppression_index.get(finding.path)
                    if index is not None and index.suppresses(finding):
                        suppressed.append(finding)
                    else:
                        kept.append(finding)
            raw.extend(kept)
            result.suppressed.extend(suppressed)
            cache.store_project(tree, kept, suppressed)

    cache.save(current_files=set(file_shas))
    result.cache_hits = cache.hits
    result.cache_misses = cache.misses

    baseline = load_baseline(config.baseline_path) if config.use_baseline else {}
    result.findings, result.baselined = split_by_baseline(sorted(raw), baseline)
    result.suppressed.sort()
    return result


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
