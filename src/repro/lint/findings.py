"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .fixes import Fix


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Sorts by location so reports are stable regardless of the order in
    which rules ran.
    """

    path: str  # posix-style path as given to the engine
    line: int  # 1-based
    col: int  # 0-based, as in the ``ast`` module
    rule_id: str
    message: str
    source_line: str = ""  # stripped text of the offending line
    #: Optional machine-applicable rewrite (``repro-lint --fix``).
    #: Excluded from ordering and the baseline fingerprint.
    fix: Fix | None = field(default=None, compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line *number* so that unrelated edits
        above a baselined finding do not resurrect it; it is keyed on
        the rule, the file, and the offending line's text instead.
        """
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{self.source_line}".encode()
        ).hexdigest()
        return digest[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint(),
            "fixable": self.fix is not None,
        }
        if self.fix is not None:
            payload["fix"] = self.fix.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict, source_line: str = "") -> "Finding":
        """Rebuild a finding from :meth:`to_dict` (cache round-trips)."""
        fix = data.get("fix")
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=str(data["rule"]),
            message=str(data["message"]),
            source_line=str(data.get("source_line", source_line)),
            fix=Fix.from_dict(fix) if isinstance(fix, dict) else None,
        )
