"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json
from collections import Counter

from .engine import LintResult

__all__ = ["text_report", "json_report", "REPORTERS"]


def text_report(result: LintResult, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    for error in result.errors:
        lines.append(f"error: {error}")
    by_rule = Counter(f.rule_id for f in result.findings)
    summary = (
        f"{result.files_checked} files checked, "
        f"{len(result.findings)} findings"
    )
    if by_rule:
        summary += " (" + ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        ) + ")"
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed inline"
    if result.cache_hits or result.cache_misses:
        summary += (
            f" [cache: {result.cache_hits} hits, "
            f"{result.cache_misses} misses]"
        )
    lines.append(summary)
    if verbose:
        for finding in result.suppressed:
            lines.append(f"suppressed: {finding.render()}")
        for finding in result.baselined:
            lines.append(f"baselined: {finding.render()}")
    return "\n".join(lines)


def json_report(result: LintResult, verbose: bool = False) -> str:
    payload: dict[str, object] = {
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "errors": list(result.errors),
        "counts": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
        },
        "ok": result.ok,
        "cache": {"hits": result.cache_hits, "misses": result.cache_misses},
    }
    if verbose:
        payload["baselined"] = [f.to_dict() for f in result.baselined]
        payload["suppressed"] = [f.to_dict() for f in result.suppressed]
    return json.dumps(payload, indent=2)


REPORTERS = {"text": text_report, "json": json_report}
