"""Per-node forwarding statistics.

Same design as :class:`~repro.mac.stats.MacStats`: the forwarding
agent counts its hot path in this plain bundle, and telemetry
*harvests* the totals into a :class:`~repro.obs.MetricsRegistry` after
the run — enabling observation costs the relay path nothing and can
never change results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from ..obs.metrics import MetricsRegistry

__all__ = ["RouteStats"]


@dataclass
class RouteStats:
    """Counter bundle for one node's forwarding agent."""

    #: Packets this node injected as a flow origin.
    originated: int = 0
    #: Transit packets accepted into the relay queue (not ours, re-sent).
    forwarded: int = 0
    #: Packets that reached this node as their final destination.
    delivered: int = 0

    #: Drops, by cause — mutually exclusive, counted where they happen.
    dropped_queue_full: int = 0
    dropped_dead_end: int = 0
    dropped_ttl: int = 0
    dropped_mac: int = 0

    @property
    def dropped_total(self) -> int:
        """All relay-plane drops at this node."""
        return (
            self.dropped_queue_full
            + self.dropped_dead_end
            + self.dropped_ttl
            + self.dropped_mac
        )

    def reset(self) -> None:
        """Zero every counter (used to discard warm-up transients)."""
        self.originated = 0
        self.forwarded = 0
        self.delivered = 0
        self.dropped_queue_full = 0
        self.dropped_dead_end = 0
        self.dropped_ttl = 0
        self.dropped_mac = 0

    def publish(self, metrics: "MetricsRegistry", prefix: str = "route") -> None:
        """Accumulate these counters into a telemetry registry."""
        counter = metrics.counter
        counter(f"{prefix}.originated").inc(self.originated)
        counter(f"{prefix}.forwarded").inc(self.forwarded)
        counter(f"{prefix}.delivered").inc(self.delivered)
        counter(f"{prefix}.dropped_queue_full").inc(self.dropped_queue_full)
        counter(f"{prefix}.dropped_dead_end").inc(self.dropped_dead_end)
        counter(f"{prefix}.dropped_ttl").inc(self.dropped_ttl)
        counter(f"{prefix}.dropped_mac").inc(self.dropped_mac)

    def merge(self, other: "RouteStats") -> None:
        """Accumulate another node's counters into this one (for sums)."""
        self.originated += other.originated
        self.forwarded += other.forwarded
        self.delivered += other.delivered
        self.dropped_queue_full += other.dropped_queue_full
        self.dropped_dead_end += other.dropped_dead_end
        self.dropped_ttl += other.dropped_ttl
        self.dropped_mac += other.dropped_mac
