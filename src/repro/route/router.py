"""Next-hop selection: the Router interface and two implementations.

Both routers are *deterministic*: given the same topology they answer
every ``next_hop`` query identically, with ties broken by smallest
node id.  Neither draws randomness, so routing can never perturb the
MAC/traffic RNG streams.

:class:`GreedyGeographicRouter` is the natural companion to the
paper's neighbor-protocol assumption — Section 4 grants the MAC a
protocol that knows every neighbor's location, and greedy geographic
forwarding needs exactly that and nothing more.  It forwards to the
in-range neighbor that makes the most progress toward the destination
and refuses to forward when no neighbor is *strictly* closer than the
current node (the classic dead-end guard, which also makes routes
provably loop-free: the remaining distance decreases at every hop).

:class:`StaticShortestPathRouter` is the ground-truth baseline: a
hop-count shortest-path (breadth-first) next-hop table precomputed
over the topology's unit-disk connectivity graph.  Where greedy
forwarding can strand a packet in a local minimum, the static router
delivers whenever a path exists — the gap between the two is itself a
measurement.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Mapping, Protocol

from ..mac.neighbors import NeighborTable

if TYPE_CHECKING:  # pragma: no cover - import cycle: net.multihop imports us
    from ..net.topology import Topology

__all__ = ["Router", "GreedyGeographicRouter", "StaticShortestPathRouter"]


class Router(Protocol):
    """Answers one question: from ``current``, where next toward ``dst``?"""

    def next_hop(self, current: int, dst: int) -> int | None:
        """The neighbor to relay through, or ``None`` when stuck.

        ``None`` means the router has no admissible next hop (greedy
        dead end, or no path in the connectivity graph); the caller
        accounts the packet as a dead-end drop.
        """
        ...  # pragma: no cover - protocol


class GreedyGeographicRouter:
    """Greedy geographic forwarding over the location oracle.

    Args:
        tables: one :class:`~repro.mac.neighbors.NeighborTable` per
            node id — the *same* objects the MACs consult, so a stale
            :class:`~repro.mac.neighbors.SnapshotNeighborTable` can be
            substituted and the router degrades with it.

    The next hop for ``(current, dst)`` is the in-range neighbor that
    minimizes the remaining distance to ``dst``, provided that distance
    is strictly smaller than the current node's own — otherwise the
    packet is at a local minimum and the router reports a dead end
    rather than looping.  Ties (equidistant neighbors) break toward
    the smallest node id.
    """

    def __init__(self, tables: Mapping[int, NeighborTable]) -> None:
        if not tables:
            raise ValueError("need at least one neighbor table")
        self._tables = dict(tables)

    def next_hop(self, current: int, dst: int) -> int | None:
        if current == dst:
            raise ValueError(f"node {current} routing to itself")
        table = self._tables[current]
        best_id: int | None = None
        best_distance = table.distance_to(dst)
        for neighbor in sorted(table.neighbor_ids()):
            if neighbor == dst:
                return dst  # destination in range: done
            neighbor_table = self._tables.get(neighbor)
            if neighbor_table is None:
                continue  # not a routing participant
            distance = neighbor_table.distance_to(dst)
            if distance < best_distance:
                best_id = neighbor
                best_distance = distance
        return best_id


class StaticShortestPathRouter:
    """Hop-count shortest-path next-hop table over the ground truth.

    Precomputed per topology with a deterministic breadth-first search
    from every destination (neighbors visited in ascending id order),
    so among equal-length paths the one through the smallest-id parent
    always wins.  Queries are O(1) dict lookups; unreachable pairs
    answer ``None``.
    """

    def __init__(self, next_hops: Mapping[tuple[int, int], int]) -> None:
        self._next_hops = dict(next_hops)

    @classmethod
    def from_topology(cls, topology: "Topology") -> "StaticShortestPathRouter":
        """Build the table from a topology's unit-disk connectivity."""
        graph = topology.connectivity_graph()
        adjacency = {
            node: sorted(graph.neighbors(node)) for node in sorted(graph.nodes)
        }
        return cls(cls._bfs_next_hops(adjacency))

    @staticmethod
    def _bfs_next_hops(
        adjacency: Mapping[int, list[int]]
    ) -> dict[tuple[int, int], int]:
        """BFS from each destination; record every node's hop toward it.

        Searching *from the destination* means each discovered node's
        parent is its next hop, and visiting neighbors in ascending id
        order pins the tie-break.
        """
        table: dict[tuple[int, int], int] = {}
        for dst in sorted(adjacency):
            parent: dict[int, int] = {dst: dst}
            frontier: deque[int] = deque([dst])
            while frontier:
                node = frontier.popleft()
                for neighbor in adjacency[node]:
                    if neighbor not in parent:
                        parent[neighbor] = node
                        frontier.append(neighbor)
            for node, toward in parent.items():
                if node != dst:
                    table[(node, dst)] = toward
        return table

    def next_hop(self, current: int, dst: int) -> int | None:
        if current == dst:
            raise ValueError(f"node {current} routing to itself")
        return self._next_hops.get((current, dst))

    def hop_count(self, src: int, dst: int) -> int | None:
        """Path length in hops, or ``None`` when unreachable."""
        if src == dst:
            return 0
        hops = 0
        node = src
        while node != dst:
            node_next = self._next_hops.get((node, dst))
            if node_next is None:
                return None
            node = node_next
            hops += 1
        return hops
