"""The per-node forwarding agent: the relay plane above the MAC.

A :class:`ForwardingAgent` owns everything between "this node has a
packet for a far destination" and "the MAC has a packet for a
neighbor": next-hop resolution through a
:class:`~repro.route.router.Router`, a bounded relay queue with
deterministic drop accounting, and re-enqueueing of received transit
packets toward their final destination.

Network-layer metadata rides on the MAC's DATA frames as an opaque
:class:`FlowPayload` (see ``payload`` on
:class:`~repro.mac.packet.Packet` and :class:`~repro.phy.Frame`), so
the MAC state machine needs no knowledge of routing — it delivers
frames to its ``delivery_listeners`` exactly as before, and the agent
picks out the ones that are flow traffic.

Queueing discipline: the agent keeps *at most one* packet in the MAC
queue at a time and holds the rest in its own bounded FIFO.  This
keeps the MAC's head-of-line service order intact while making the
relay buffer — the thing that actually overflows in a congested
multi-hop network — explicitly sized and accounted.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable

from ..dessim.engine import Simulator
from ..mac.dcf import DcfMac
from ..mac.packet import Packet
from ..phy.frames import Frame, FrameType
from .router import Router
from .stats import RouteStats

__all__ = ["FlowPayload", "ForwardingAgent"]


@dataclasses.dataclass(frozen=True)
class FlowPayload:
    """Network-layer header of one end-to-end packet.

    Attributes:
        flow_id: stable flow identifier (``"src->dst"``).
        src: originating node id.
        dst: final-destination node id.
        seq: per-flow sequence number, 0-based.
        created_ns: origination time — end-to-end delay runs from here
            to the final destination's reception.
        hop_count: MAC hops completed so far (0 at the origin).
    """

    flow_id: str
    src: int
    dst: int
    seq: int
    created_ns: int
    hop_count: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"flow src and dst must differ, got {self.src}")
        if self.created_ns < 0:
            raise ValueError(f"created_ns must be >= 0, got {self.created_ns}")
        if self.hop_count < 0:
            raise ValueError(f"hop_count must be >= 0, got {self.hop_count}")


class ForwardingAgent:
    """One node's relay plane, layered on its :class:`~repro.mac.DcfMac`.

    Args:
        sim: the shared simulator (for timestamps only — the agent is
            purely reactive and schedules no events of its own).
        mac: the node's MAC entity; the agent registers itself on the
            MAC's service and delivery listener hooks.
        router: next-hop oracle shared across the network.
        max_queue: bound of the relay FIFO; arrivals beyond it are
            dropped and counted (``dropped_queue_full``).
        ttl: maximum MAC hops a packet may take; a transit packet whose
            next hop would exceed it is dropped (``dropped_ttl``).
            Guards against forwarding loops a router could produce.
    """

    def __init__(
        self,
        sim: Simulator,
        mac: DcfMac,
        router: Router,
        *,
        max_queue: int = 50,
        ttl: int = 32,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        self.sim = sim
        self.mac = mac
        self.router = router
        self.node_id = mac.node_id
        self.max_queue = max_queue
        self.ttl = ttl
        self.stats = RouteStats()
        #: (next_hop, payload, size_bytes) awaiting MAC service.
        self._relay_queue: deque[tuple[int, FlowPayload, int]] = deque()
        self._mac_busy = False
        #: Called with (payload, delay_ns, hops) on final delivery here.
        self.delivery_listeners: list[Callable[[FlowPayload, int, int], None]] = []
        mac.service_listeners.append(self._on_serviced)
        mac.delivery_listeners.append(self._on_frame)

    @property
    def queue_length(self) -> int:
        """Relay packets waiting (excludes the one in the MAC, if any)."""
        return len(self._relay_queue)

    # ------------------------------------------------------------------
    # Origination (called by traffic sources).
    # ------------------------------------------------------------------

    def originate(self, payload: FlowPayload, size_bytes: int) -> bool:
        """Inject one end-to-end packet at its origin.

        Returns ``True`` when the packet entered the relay queue,
        ``False`` when it was dropped (dead end or queue full) — the
        drop is already accounted in :attr:`stats` either way.
        """
        if payload.src != self.node_id:
            raise ValueError(
                f"node {self.node_id} originating a packet with src {payload.src}"
            )
        self.stats.originated += 1
        return self._accept(payload, size_bytes)

    # ------------------------------------------------------------------
    # Relay queue.
    # ------------------------------------------------------------------

    def _accept(self, payload: FlowPayload, size_bytes: int) -> bool:
        """Resolve the next hop and queue the packet, accounting drops."""
        next_hop = self.router.next_hop(self.node_id, payload.dst)
        if next_hop is None:
            self.stats.dropped_dead_end += 1
            return False
        if len(self._relay_queue) >= self.max_queue:
            self.stats.dropped_queue_full += 1
            return False
        self._relay_queue.append((next_hop, payload, size_bytes))
        self._feed()
        return True

    def _feed(self) -> None:
        """Hand the MAC its next packet, one at a time."""
        if self._mac_busy or not self._relay_queue:
            return
        next_hop, payload, size_bytes = self._relay_queue.popleft()
        self._mac_busy = True
        self.mac.enqueue(
            Packet(
                dst=next_hop,
                size_bytes=size_bytes,
                created_ns=self.sim.now,
                payload=payload,
            )
        )

    # ------------------------------------------------------------------
    # MAC callbacks.
    # ------------------------------------------------------------------

    def _on_serviced(self, packet: Packet, delivered: bool) -> None:
        if not isinstance(packet.payload, FlowPayload):
            return  # not ours (co-resident single-hop traffic)
        self._mac_busy = False
        if not delivered:
            self.stats.dropped_mac += 1
        self._feed()

    def _on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if frame.ftype is not FrameType.DATA or not isinstance(
            payload, FlowPayload
        ):
            return
        hops = payload.hop_count + 1
        if payload.dst == self.node_id:
            self.stats.delivered += 1
            delay_ns = self.sim.now - payload.created_ns
            for listener in self.delivery_listeners:
                listener(payload, delay_ns, hops)
            return
        # Transit: one hop consumed, re-route toward the destination.
        if hops >= self.ttl:
            self.stats.dropped_ttl += 1
            return
        hopped = dataclasses.replace(payload, hop_count=hops)
        if self._accept(hopped, frame.size_bytes):
            self.stats.forwarded += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ForwardingAgent(node={self.node_id}, queue={self.queue_length}, "
            f"busy={self._mac_busy})"
        )
