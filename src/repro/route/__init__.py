"""Multi-hop routing and end-to-end forwarding.

The paper's setting is a *multi-hop* ad hoc network, but its Section-4
evaluation stops at single-hop saturated traffic.  This package layers
the missing relay plane between :mod:`repro.mac` and :mod:`repro.net`:

* :class:`~repro.route.router.Router` — the next-hop interface, with
  two deterministic implementations:
  :class:`~repro.route.router.GreedyGeographicRouter` (geographic
  forwarding over the :class:`~repro.mac.neighbors.NeighborTable`
  location oracle, with a strict-progress dead-end/loop guard) and
  :class:`~repro.route.router.StaticShortestPathRouter` (hop-count
  shortest paths precomputed per topology);
* :class:`~repro.route.forwarding.ForwardingAgent` — one per node,
  above :class:`~repro.mac.DcfMac`: owns a bounded relay queue with
  deterministic drop accounting and re-enqueues received transit
  packets toward their final destination;
* :class:`~repro.route.stats.RouteStats` — per-node forwarding
  counters, harvested into telemetry like
  :class:`~repro.mac.stats.MacStats`.

Everything here obeys the repo's determinism contract: no RNG draws,
no wall clocks, and iteration over sorted views only — the same seed
produces bit-identical multi-hop artifacts.
"""

from .forwarding import FlowPayload, ForwardingAgent
from .router import GreedyGeographicRouter, Router, StaticShortestPathRouter
from .stats import RouteStats

__all__ = [
    "Router",
    "GreedyGeographicRouter",
    "StaticShortestPathRouter",
    "ForwardingAgent",
    "FlowPayload",
    "RouteStats",
]
