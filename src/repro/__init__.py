"""Reproduction of Wang & Garcia-Luna-Aceves, ICDCS 2003.

"Collision Avoidance in Single-Channel Ad Hoc Networks Using Directional
Antennas" — an analytical model (:mod:`repro.core`) of three
collision-avoidance MAC schemes plus a from-scratch discrete-event
simulator (:mod:`repro.dessim`, :mod:`repro.phy`, :mod:`repro.mac`,
:mod:`repro.net`) of IEEE 802.11 DCF and its directional variants that
regenerates every figure and table in the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
