#!/usr/bin/env python3
"""Quantify the Section-4 fairness discussion: BEB starvation.

The paper observes that 802.11's binary exponential backoff "always
favors the node that succeeds last", letting one node monopolize the
channel while its competitors starve — with the imbalance worst when
few nodes contend.  The paper omitted its fairness results for space;
this example regenerates them on a deliberately adversarial scenario:
two saturated sender-receiver pairs whose senders are hidden from each
other but interfere at both receivers (so every loss is a hidden-
terminal loss and the BEB winner keeps winning).

Run:  python examples/fairness_study.py
"""

import math
import random

from repro.dessim import RngRegistry, Simulator, seconds
from repro.mac import DSSS_MAC, DcfMac, NeighborTable, POLICIES
from repro.metrics import jain_index
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology
from repro.phy import Channel, Position, Radio, UnitDiskPropagation
from repro.traffic import SaturatedCbrSource


def adversarial_pairs(scheme: str, beamwidth_deg: float, seed: int = 0):
    """Two crossed pairs: senders hidden, receivers exposed to both."""
    sim = Simulator()
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=300.0))
    rng = RngRegistry(seed)
    positions = {0: (0, 0), 1: (200, 0), 2: (200, 250), 3: (0, 250)}
    macs = {}
    for node_id, (x, y) in positions.items():
        radio = Radio(sim, node_id, Position(x, y), channel)
        macs[node_id] = DcfMac(
            sim, radio, DSSS_MAC, NeighborTable(channel, node_id),
            POLICIES[scheme], beamwidth=math.radians(beamwidth_deg),
            rng=rng.stream(f"mac{node_id}"),
        )
    for sender, receiver in ((0, 1), (2, 3)):
        SaturatedCbrSource(
            sim, macs[sender], [receiver], rng.stream(f"traffic{sender}")
        ).start()
        # start() is deferred to run in NetworkSimulation; here sources
        # enqueue immediately, which is what we want.
    sim.run(until=seconds(5))
    return [macs[0].stats.packets_delivered, macs[2].stats.packets_delivered]


def crossed_pairs_study() -> None:
    print("=== Two crossed saturated pairs (hidden senders) ===")
    print(f"{'scheme':10s} {'beam':>6} {'deliveries':>14} {'Jain':>7}")
    for scheme in ("ORTS-OCTS", "DRTS-DCTS"):
        for beamwidth in (30.0, 150.0):
            deliveries = adversarial_pairs(scheme, beamwidth)
            print(
                f"{scheme:10s} {beamwidth:5.0f}d {str(deliveries):>14} "
                f"{jain_index(deliveries):7.3f}"
            )
            if scheme == "ORTS-OCTS":
                break  # beamwidth-independent
    print()


def ring_network_study() -> None:
    print("=== Ring networks: fairness vs density and beamwidth (DRTS-DCTS) ===")
    print(f"{'N':>3} {'beam':>6} {'Jain (mean over topologies)':>28}")
    for n in (3, 8):
        for beamwidth in (30.0, 150.0):
            values = []
            for i in range(2):
                topo = generate_ring_topology(
                    TopologyConfig(n=n), random.Random(500 + 10 * n + i)
                )
                result = NetworkSimulation(
                    topo, "DRTS-DCTS", math.radians(beamwidth), seed=i
                ).run(seconds(2))
                values.append(result.inner_fairness)
            print(f"{n:3d} {beamwidth:5.0f}d {sum(values) / len(values):28.3f}")
    print()
    print("Paper's claims: starvation under BEB; less severe for larger N.")


if __name__ == "__main__":
    crossed_pairs_study()
    ring_network_study()
