#!/usr/bin/env python3
"""Reproduce Fig. 5: analytical max throughput vs antenna beamwidth.

Sweeps the beamwidth from 15 to 180 degrees (the paper's grid) for the
three collision-avoidance schemes at each simulated density, printing
the curves and the paper's qualitative findings.  Also demonstrates the
lower-level API: per-distance success probabilities and the node Markov
chain for a single operating point.

Run:  python examples/analytical_study.py
"""

import math

from repro.core import (
    PAPER_PARAMETERS,
    DrtsDcts,
    NonPersistentCsma,
    OrtsOcts,
)
from repro.experiments import format_fig5_table, run_fig5


def sweep_all_densities() -> None:
    for n in (3, 5, 8):
        print(f"--- Fig. 5, N = {n} ---")
        rows = run_fig5(n_neighbors=float(n))
        print(format_fig5_table(rows))
        narrow, wide = rows[0], rows[-1]
        print(
            f"  narrow-beam winner: "
            f"{max(narrow.throughput, key=narrow.throughput.get)} | "
            f"wide-beam winner: {max(wide.throughput, key=wide.throughput.get)}"
        )
        print()


def anatomy_of_one_point() -> None:
    print("--- Anatomy of one operating point (N = 5, theta = 30dg, p = 0.05) ---")
    params = PAPER_PARAMETERS.with_neighbors(5.0).with_beamwidth(math.radians(30))
    scheme = DrtsDcts(params)
    p = 0.05
    for r in (0.25, 0.5, 0.75, 1.0):
        print(f"  P_ws(r={r:.2f}) = {scheme.p_ws_at_distance(r, p):.5f}")
    pi = scheme.stationary(p)
    print(f"  stationary: wait={pi.wait:.4f} succeed={pi.succeed:.4f} fail={pi.fail:.4f}")
    print(f"  T_fail = {scheme.t_fail(p):.2f} slots (truncated geometric mean)")
    print(f"  throughput = {scheme.throughput(p):.4f}")
    print()


def why_rts_cts_at_all() -> None:
    print("--- Why collision avoidance? CSMA baseline with long data packets ---")
    params = PAPER_PARAMETERS.with_neighbors(5.0)
    from repro.core import maximize_throughput

    csma = maximize_throughput(NonPersistentCsma(params)).throughput
    orts = maximize_throughput(OrtsOcts(params)).throughput
    print(f"  non-persistent CSMA : {csma:.4f}")
    print(f"  ORTS-OCTS (RTS/CTS) : {orts:.4f}")
    print(f"  -> the handshake wins by {orts / csma:.1f}x when data packets are "
          f"{params.l_data / params.l_rts:.0f}x the control packet length")


if __name__ == "__main__":
    sweep_all_densities()
    anatomy_of_one_point()
    why_rts_cts_at_all()
