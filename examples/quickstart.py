#!/usr/bin/env python3
"""Quickstart: both halves of the library in under a minute.

1. The analytical model — maximum achievable throughput of the three
   collision-avoidance schemes at one beamwidth.
2. The simulator — a small saturated ad hoc network under IEEE 802.11
   and its all-directional variant, on the same topology.

Run:  python examples/quickstart.py
"""

import math
import random

from repro.core import PAPER_PARAMETERS, SCHEME_FACTORIES, maximize_throughput
from repro.dessim import seconds
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology


def analytical_half() -> None:
    print("=== Analytical model (N = 5 neighbors, theta = 30 degrees) ===")
    params = PAPER_PARAMETERS.with_neighbors(5.0).with_beamwidth(math.radians(30))
    for name, factory in SCHEME_FACTORIES.items():
        optimum = maximize_throughput(factory(params))
        print(
            f"  {name:10s}  max throughput = {optimum.throughput:.4f} "
            f"(at p = {optimum.p_opt:.4f})"
        )
    print()


def simulation_half() -> None:
    print("=== Simulation (N = 3 ring topology, 27 nodes, saturated CBR) ===")
    topology = generate_ring_topology(TopologyConfig(n=3), random.Random(42))
    print(f"  topology: {len(topology.positions)} nodes, "
          f"inner nodes measured: {topology.inner_ids}")
    for scheme in ("ORTS-OCTS", "DRTS-DCTS"):
        net = NetworkSimulation(topology, scheme, math.radians(30), seed=7)
        result = net.run(seconds(2))
        print(
            f"  {scheme:10s}  throughput = {result.inner_throughput_bps / 1e6:.3f} Mbps, "
            f"mean delay = {result.inner_mean_delay_s * 1e3:.1f} ms, "
            f"collision ratio = {result.inner_collision_ratio:.3f}"
        )
    print()
    print("Next: examples/analytical_study.py reproduces Fig. 5;")
    print("      examples/sim_throughput_study.py reproduces Fig. 6/7 cells;")
    print("      examples/fairness_study.py quantifies the BEB fairness discussion.")


if __name__ == "__main__":
    analytical_half()
    simulation_half()
