#!/usr/bin/env python3
"""Directional antennas meet mobility: how fresh must bearings be?

The paper grants its directional MACs "a neighbor protocol that can
actively maintain a list of neighbors as well as their locations" and
simulates static nodes.  This example probes the assumption: a
saturated sender beams 15-degree transmissions at a receiver wandering
at various speeds, while the sender's neighbor table refreshes only
every T seconds.  The omni-directional 802.11 baseline runs alongside
as the control.

Run:  python examples/mobility_study.py   (takes ~1 minute)
"""

from repro.dessim import seconds
from repro.experiments import format_mobility_table, run_mobility_study


def main() -> None:
    for speed in (10.0, 25.0):
        print(f"=== receiver speed {speed:.0f} m/s, 15-degree beams ===")
        points = run_mobility_study(
            refresh_seconds=(0.0, 1.0, 3.0),
            speed_mps=speed,
            sim_time_ns=seconds(4),
        )
        print(format_mobility_table(points))
        print()
    print("Reading: refresh 0 s is the paper's perfect oracle; omni")
    print("transmission never cares; narrow beams degrade once the")
    print("bearing drift since the last refresh exceeds theta/2.")


if __name__ == "__main__":
    main()
