#!/usr/bin/env python3
"""End-to-end flows over the relay plane: greedy vs shortest-path.

The paper's Section-4 evaluation is single-hop: every destination is a
direct neighbor.  This example routes traffic instead — each node
originates one flow toward a destination at least two hops away, and
packets are relayed by the `repro.route` forwarding plane on top of
the unchanged directional MAC.  Greedy geographic forwarding (using
the paper's perfect-neighbor-protocol assumption) runs against the
idealized shortest-path baseline: the gap between them is geographic
dead ends, not MAC behaviour.

Run:  python examples/multihop_study.py   (takes ~1 minute)
"""

from repro.dessim import seconds
from repro.experiments import (
    MultihopStudyConfig,
    format_multihop_table,
    run_multihop,
)


def main() -> None:
    for router in ("greedy", "shortest-path"):
        print(f"=== router: {router}, N = 5, two rings ===")
        config = MultihopStudyConfig(
            n_values=(5,),
            beamwidths_deg=(30.0, 90.0, 150.0),
            schemes=("ORTS-OCTS", "DRTS-OCTS"),
            topologies=2,
            sim_time_ns=seconds(0.5),
            base_seed=7,
            router=router,
            rings=2,
        )
        print(format_multihop_table(run_multihop(config)))
    print("Reading: ORTS-OCTS ignores beamwidth (omni RTS/CTS), so its")
    print("column is flat; the directional scheme trades spatial reuse")
    print("against deafness along the relay path.  If greedy trails the")
    print("shortest-path baseline, the loss is geographic dead ends.")


if __name__ == "__main__":
    main()
