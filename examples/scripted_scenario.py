#!/usr/bin/env python3
"""A scripted hidden-terminal scenario, narrated from the event trace.

Demonstrates the lower-level toolkit: building a network by hand,
driving it with a generator-based process (`repro.dessim.spawn`), and
reading the structured trace to narrate exactly how the RTS/CTS
handshake defeats — and sometimes fails to defeat — hidden terminals.

Topology (range 300 m):   a(0,0) --- b(200,0) --- c(400,0)
a and c cannot hear each other; both talk to b.

Run:  python examples/scripted_scenario.py
"""

import random

from repro.dessim import RngRegistry, Simulator, Tracer, microseconds, seconds, spawn
from repro.mac import DSSS_MAC, DcfMac, NeighborTable, ORTS_OCTS_POLICY, Packet
from repro.phy import Channel, Position, Radio, UnitDiskPropagation


def build_network():
    sim = Simulator()
    tracer = Tracer(enabled=True, capacity=None)
    channel = Channel(sim, propagation=UnitDiskPropagation(range_m=300.0))
    rng = RngRegistry(2003)
    macs = {}
    for node_id, (x, y) in {0: (0, 0), 1: (200, 0), 2: (400, 0)}.items():
        radio = Radio(sim, node_id, Position(x, y), channel, tracer=tracer)
        macs[node_id] = DcfMac(
            sim, radio, DSSS_MAC, NeighborTable(channel, node_id),
            ORTS_OCTS_POLICY, rng=rng.stream(f"mac{node_id}"),
            tracer=tracer,
        )
    return sim, tracer, macs


def scenario(sim, macs):
    """The script: a sends, then c barges in mid-handshake."""
    macs[0].enqueue(Packet(dst=1, size_bytes=1460, created_ns=sim.now))
    yield microseconds(700)  # a's DATA is now in flight to b
    # c wakes up with its own packet for b: its carrier is idle (it
    # cannot hear a!) but b's CTS set c's NAV — collision avoidance.
    macs[2].enqueue(Packet(dst=1, size_bytes=1460, created_ns=sim.now))
    yield seconds(1)


def narrate(tracer):
    interesting = {
        "rts-sent": "sent an RTS",
        "rts-accepted": "accepted an RTS (will CTS)",
        "cts-timeout": "timed out waiting for CTS",
        "ack-timeout": "timed out waiting for ACK (data collided!)",
        "delivered": "completed a four-way handshake",
        "packet-dropped": "dropped a packet (retries exhausted)",
    }
    names = {0: "a", 1: "b", 2: "c"}
    print("timeline (MAC events):")
    for record in tracer.filter(category="mac"):
        if record.event in interesting:
            ms = record.time / 1e6
            print(f"  t={ms:9.3f} ms  node {names[record.node]}: "
                  f"{interesting[record.event]}")


def main() -> None:
    sim, tracer, macs = build_network()
    spawn(sim, scenario(sim, macs))
    sim.run(until=seconds(2))
    narrate(tracer)
    print()
    a, c = macs[0].stats, macs[2].stats
    print(f"a: delivered={a.packets_delivered} ackTO={a.ack_timeouts}")
    print(f"c: delivered={c.packets_delivered} ackTO={c.ack_timeouts}")
    print()
    print("Because c overheard b's omni CTS, its NAV held it back until")
    print("a's handshake finished — the coordination that DRTS-DCTS")
    print("deliberately gives up in exchange for spatial reuse.")


if __name__ == "__main__":
    main()
