#!/usr/bin/env python3
"""Reproduce Fig. 6 / Fig. 7 cells: the dense-network (N = 8) showdown.

The paper's headline simulation result is clearest in dense networks:
the all-directional DRTS-DCTS scheme beats IEEE 802.11 on throughput by
roughly 2x and halves the delay, while paying a visibly higher
collision ratio.  This example runs that comparison on a couple of
N = 8 ring topologies and prints every Section-4 metric side by side.

Takes a few minutes (72 saturated nodes per run).  For the full grid
use the benchmark harness:
    REPRO_N_VALUES=3,5,8 REPRO_BEAMWIDTHS_DEG=30,90,150 \
        pytest benchmarks/ --benchmark-only

Run:  python examples/sim_throughput_study.py
"""

import math
import random

from repro.dessim import seconds
from repro.metrics import summarize
from repro.net import NetworkSimulation, TopologyConfig, generate_ring_topology

TOPOLOGIES = 2
SIM_SECONDS = 2
N = 8
BEAMWIDTH_DEG = 30.0


def main() -> None:
    topologies = [
        generate_ring_topology(TopologyConfig(n=N), random.Random(300 + i))
        for i in range(TOPOLOGIES)
    ]
    print(
        f"N = {N}: {9 * N} saturated nodes per topology, "
        f"{TOPOLOGIES} topologies x {SIM_SECONDS}s simulated, "
        f"beamwidth {BEAMWIDTH_DEG:.0f} degrees\n"
    )
    header = (
        f"{'scheme':10s}  {'thr (Mbps)':>22} {'delay (ms)':>22} "
        f"{'collisions':>10} {'fairness':>9}"
    )
    print(header)
    print("-" * len(header))
    for scheme in ("ORTS-OCTS", "DRTS-DCTS", "DRTS-OCTS"):
        results = [
            NetworkSimulation(
                topo, scheme, math.radians(BEAMWIDTH_DEG), seed=i
            ).run(seconds(SIM_SECONDS))
            for i, topo in enumerate(topologies)
        ]
        thr = summarize([r.inner_throughput_bps / 1e6 for r in results])
        delay = summarize([r.inner_mean_delay_s * 1e3 for r in results])
        coll = summarize([r.inner_collision_ratio for r in results])
        fair = summarize([r.inner_fairness for r in results])
        print(
            f"{scheme:10s}  {thr.mean:6.3f} [{thr.minimum:5.3f},{thr.maximum:5.3f}]"
            f"  {delay.mean:6.1f} [{delay.minimum:5.1f},{delay.maximum:5.1f}]"
            f"  {coll.mean:10.3f} {fair.mean:9.3f}"
        )
    print()
    print("Expected shape (paper, Figs. 6-7 + Section 4):")
    print("  throughput: DRTS-DCTS > DRTS-OCTS > ORTS-OCTS")
    print("  delay:      DRTS-DCTS lowest")
    print("  collisions: DRTS-DCTS highest (the price of spatial reuse)")


if __name__ == "__main__":
    main()
